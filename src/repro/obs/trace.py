"""Cycle-level event tracer: a bounded ring buffer with JSONL persistence.

Off by default.  When enabled (``SimulationParams.trace_events`` or the
CLI's ``--trace-events``), the network emits one structured event per
observable action inside the measurement window:

===========  =============================================================
kind         meaning
===========  =============================================================
``inject``   a packet entered at its source network interface
``route``    RC diverted a packet off its table route (escape / adaptive)
``hop``      a flit crossed an inter-router mesh link
``rf``       a flit crossed an RF-I shortcut (carries the band index)
``deliver``  one destination received the packet's tail flit
``complete`` the packet reached every destination
``drop``     the run ended with the packet still undelivered (capped drain)
``fault``    a fault fired/repaired, or dropped a message at injection
             (``packet`` is ``-1``: fault events are not tied to a packet)
``request``  one serving-tier request settled (``repro.serve``): endpoint
             in ``port``, status + settlement source in ``detail``,
             milliseconds since server start in ``cycle``, ``packet`` -1
===========  =============================================================

The buffer is a ring: when more than ``capacity`` events fire, the oldest
are discarded and counted in :attr:`EventTracer.dropped_events` — a bounded
memory footprint whatever the run length.  :func:`write_jsonl` /
:func:`read_jsonl` round-trip the buffer through one-JSON-object-per-line
files for replay and heatmap tooling.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, Optional

#: Every kind an event may carry, in the order they occur in a packet's life.
EVENT_KINDS = (
    "inject", "route", "hop", "rf", "deliver", "complete", "drop", "fault",
    "request",
)

#: Field -> required type(s); None-able fields are optional per kind.
EVENT_SCHEMA: dict[str, tuple] = {
    "cycle": (int,),
    "kind": (str,),
    "packet": (int,),
    "router": (int, type(None)),
    "port": (str, type(None)),
    "dst": (int, type(None)),
    "band": (int, type(None)),
    "detail": (str, type(None)),
}


@dataclass(frozen=True)
class TraceEvent:
    """One structured simulation event."""

    cycle: int
    kind: str
    packet: int
    router: Optional[int] = None
    port: Optional[str] = None
    dst: Optional[int] = None
    band: Optional[int] = None
    detail: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-safe dict with None-valued fields elided."""
        return {k: v for k, v in asdict(self).items() if v is not None}


def validate_event(payload: dict) -> TraceEvent:
    """Check one decoded JSONL object against the schema; return the event.

    Raises ``ValueError`` on unknown fields, missing required fields, wrong
    types, or an unknown ``kind`` — the contract tests and any external
    consumer share this one validator.
    """
    unknown = set(payload) - set(EVENT_SCHEMA)
    if unknown:
        raise ValueError(f"unknown trace-event fields {sorted(unknown)}")
    for name in ("cycle", "kind", "packet"):
        if name not in payload:
            raise ValueError(f"trace event missing required field {name!r}")
    for name, types in EVENT_SCHEMA.items():
        value = payload.get(name)
        if not isinstance(value, types):
            raise ValueError(
                f"trace-event field {name!r} has type "
                f"{type(value).__name__}, expected one of "
                f"{[t.__name__ for t in types]}"
            )
    if payload["kind"] not in EVENT_KINDS:
        raise ValueError(f"unknown trace-event kind {payload['kind']!r}")
    return TraceEvent(**payload)


class EventTracer:
    """Bounded ring buffer of :class:`TraceEvent`."""

    def __init__(self, capacity: int = 65_536):
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted_events = 0

    def emit(
        self,
        cycle: int,
        kind: str,
        packet: int,
        router: Optional[int] = None,
        port: Optional[str] = None,
        dst: Optional[int] = None,
        band: Optional[int] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Append one event (evicting the oldest when the ring is full)."""
        self.emitted_events += 1
        self._ring.append(TraceEvent(
            cycle=cycle, kind=kind, packet=packet, router=router,
            port=port, dst=dst, band=band, detail=detail,
        ))

    @property
    def dropped_events(self) -> int:
        """Events evicted because the ring was full."""
        return self.emitted_events - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def events(self, kind: Optional[str] = None) -> list[TraceEvent]:
        """Buffered events, optionally filtered to one kind."""
        if kind is None:
            return list(self._ring)
        return [event for event in self._ring if event.kind == kind]

    def write_jsonl(self, path: str | Path) -> Path:
        """Persist the buffered events, one JSON object per line."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for event in self._ring:
                fh.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        return path


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load and validate a JSONL trace written by :meth:`write_jsonl`."""
    events = []
    with Path(path).open() as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: not valid JSON") from exc
            events.append(validate_event(payload))
    return events
