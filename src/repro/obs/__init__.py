"""Observability layer: metrics, event tracing, profiling, unified results.

Four pieces, designed as the durable seams any later performance work
(vectorized stepping, sharded sweeps) must preserve:

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of labeled counters,
  gauges, and histograms that :class:`~repro.noc.network.Network`, the
  RF-I phy, and the execution engine publish into;
* :mod:`repro.obs.trace` — :class:`EventTracer`, a bounded ring buffer of
  cycle-level structured events (off by default) with JSONL persistence;
* :mod:`repro.obs.profile` — :class:`Profiler`, named wall-clock phases for
  the sweep engine's per-job telemetry;
* :mod:`repro.obs.result` — :class:`RunResult`, the single result type all
  entrypoints return (see :mod:`repro.api`).

Quick start::

    from repro.obs import EventTracer, MetricsRegistry, Observation
    obs = Observation(metrics=MetricsRegistry(), tracer=EventTracer(4096))
    stats = Simulator(network, sources, sim, observation=obs).run()
    obs.metrics.total("flits_routed")      # == activity.switch_traversals
    obs.tracer.write_jsonl("events.jsonl")
"""

from repro.obs.metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, label_key,
)
from repro.obs.observe import Observation, port_name
from repro.obs.profile import Profiler, StageProfile
from repro.obs.result import RunResult, provenance_digest
from repro.obs.trace import (
    EVENT_KINDS, EVENT_SCHEMA, EventTracer, TraceEvent, read_jsonl,
    validate_event,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "EVENT_SCHEMA",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observation",
    "Profiler",
    "RunResult",
    "StageProfile",
    "TraceEvent",
    "label_key",
    "port_name",
    "provenance_digest",
    "read_jsonl",
    "validate_event",
]
