"""The resumable campaign runner and its checkpoint manifest.

A campaign executes in bounded *chunks* (``spec.chunk`` cells each).
After every chunk the runner rewrites ``campaign.json`` — the manifest —
atomically: campaign digest, per-cell status/source/metrics, chunk
counter.  Two mechanisms make a killed campaign restart with zero
recomputation:

* cells recorded ``done`` in the manifest are never re-submitted at all
  (their metrics ride in the manifest, so even reduction needs no store);
* cells simulated after the last checkpoint are already in the digest-
  addressed :class:`~repro.exec.store.ResultStore` (the sweep engine
  writes results as they land), so on restart they resolve as warm hits.

Cold cells run through :func:`~repro.exec.engine.run_sweep` — the same
process-pool engine, store, and addresses every other entrypoint uses —
or, with a :class:`~repro.serve.client.ServeClient`, through a running
``repro serve`` instance (the campaign then acts as the service's load
generator; transient 429 shedding is absorbed by the client's bounded
retry-with-backoff).

Campaign-level observability: per-source cell counters, a pending gauge,
and a phase profile rolled up from every chunk's sweep telemetry land in
the (optional) :class:`~repro.obs.metrics.MetricsRegistry` and in
:meth:`CampaignResult.summary`.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Union

from repro.campaign.pareto import frontier_summary, pareto_frontier
from repro.campaign.spec import CampaignError, CampaignSpec, load_spec
from repro.campaign.trend import DEFAULT_BENCH_DIR, trend_report
from repro.exec.engine import run_sweep
from repro.exec.jobs import JobSpec, job_digest
from repro.exec.store import ResultStore
from repro.experiments.config import (
    DEFAULT_CONFIG, FAST_CONFIG, ExperimentConfig,
)
from repro.experiments.export import jsonable
from repro.obs.profile import Profiler
from repro.params import DEFAULT_PARAMS, ArchitectureParams
from repro.serve.protocol import spec_fields

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.result import RunResult
    from repro.serve.client import ServeClient

#: Manifest layout version; bump on any incompatible shape change.
MANIFEST_SCHEMA = 1

#: The checkpoint file's name inside a campaign directory.
MANIFEST_NAME = "campaign.json"

#: Where campaign directories live by default.
DEFAULT_CAMPAIGN_ROOT = Path("benchmarks/results/campaigns")

#: The store the CLI and facade share with ``sweep``/``serve``.
DEFAULT_CACHE = "benchmarks/results/cache"

#: Cell sources that did not cost a fresh simulation in *this* process.
WARM_SOURCES = ("store", "coalesced")

ProgressFn = Callable[[dict], None]


def cell_metrics(result: "RunResult") -> dict:
    """The JSON-safe metrics block a manifest cell carries.

    Exactly :meth:`RunResult.summary` — the same block the serving tier
    returns — so locally-run and serve-driven campaigns reduce over
    identical surfaces.
    """
    return result.summary()


def manifest_path(directory: str | Path) -> Path:
    """The checkpoint file of a campaign directory."""
    return Path(directory) / MANIFEST_NAME


def load_manifest(path: str | Path) -> Optional[dict]:
    """Read a manifest; None if absent, :class:`CampaignError` if broken."""
    path = Path(path)
    if path.is_dir():
        path = manifest_path(path)
    try:
        raw = path.read_text()
    except FileNotFoundError:
        return None
    except OSError as exc:
        raise CampaignError(f"cannot read manifest {path}: {exc}") from exc
    try:
        manifest = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CampaignError(
            f"manifest {path} is corrupt ({exc}); move it aside or rerun "
            "with fresh=True") from exc
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise CampaignError(
            f"manifest {path} has schema {manifest.get('schema')!r}; "
            f"this build writes {MANIFEST_SCHEMA}")
    return manifest


def _write_manifest(path: Path, manifest: dict) -> None:
    """Atomic replace, so a kill mid-write never corrupts the checkpoint."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n")
    tmp.replace(path)


def _new_manifest(spec: CampaignSpec, digest: str,
                  cells: list[JobSpec], digests: list[str]) -> dict:
    return {
        "schema": MANIFEST_SCHEMA,
        "campaign": digest,
        "name": spec.name,
        "spec": jsonable(spec),
        "status": "running",
        "chunks_done": 0,
        "cells": [
            {
                "digest": cell_digest,
                "job": jsonable(cell),
                "label": cell.describe(),
                "status": "pending",
                "source": None,
                "wall_s": None,
                "metrics": None,
            }
            for cell, cell_digest in zip(cells, digests)
        ],
    }


def _carry_over(manifest: dict, prior: dict) -> int:
    """Adopt ``prior``'s completed cells (matched by digest); returns count."""
    done = {
        cell["digest"]: cell
        for cell in prior.get("cells", ())
        if cell.get("status") == "done"
    }
    carried = 0
    for cell in manifest["cells"]:
        previous = done.get(cell["digest"])
        if previous is not None:
            cell.update(status="done", source=previous.get("source"),
                        wall_s=previous.get("wall_s"),
                        metrics=previous.get("metrics"))
            carried += 1
    manifest["chunks_done"] = prior.get("chunks_done", 0)
    return carried


# -- the result ---------------------------------------------------------------

@dataclass
class CampaignResult:
    """One ``run_campaign`` invocation: final manifest + run telemetry."""

    spec: CampaignSpec
    digest: str
    directory: Path
    manifest: dict
    warm: int            # cells resolved without simulating (this run)
    cold: int            # cells simulated fresh (this run)
    carried: int         # cells adopted done from a prior manifest
    wall_s: float
    sim_cycles: int = 0
    sim_wall_s: float = 0.0
    chunks_run: int = 0
    profile: dict = field(default_factory=dict)

    @property
    def status(self) -> str:
        """``done`` when every cell completed, else ``running``."""
        return self.manifest["status"]

    @property
    def cells(self) -> list[dict]:
        """Every cell record, in campaign order."""
        return self.manifest["cells"]

    @property
    def done_cells(self) -> list[dict]:
        return [c for c in self.cells if c["status"] == "done"]

    @property
    def pending(self) -> int:
        return len(self.cells) - len(self.done_cells)

    def pareto(self, objectives=None) -> list[dict]:
        """The Pareto frontier over the completed cells."""
        return pareto_frontier(self.done_cells,
                               tuple(objectives or self.spec.objectives))

    def trend(self, bench_dir: str | Path = DEFAULT_BENCH_DIR) -> dict:
        """Aggregates vs the committed BENCH_* history."""
        return trend_report(self.summary(), bench_dir)

    def summary(self) -> dict:
        """Campaign-level telemetry as a JSON-safe dict."""
        objectives = tuple(self.spec.objectives)
        frontier = self.pareto(objectives)
        return {
            "name": self.spec.name,
            "campaign": self.digest,
            "status": self.status,
            "cells": len(self.cells),
            "done": len(self.done_cells),
            "pending": self.pending,
            "warm": self.warm,
            "cold": self.cold,
            "carried": self.carried,
            "chunk": self.spec.chunk,
            "chunks_run": self.chunks_run,
            "wall_s": self.wall_s,
            "simulated_cycles": self.sim_cycles,
            "simulated_wall_s": self.sim_wall_s,
            "cycles_per_sec": (self.sim_cycles / self.sim_wall_s
                               if self.sim_wall_s else 0.0),
            "profile": dict(self.profile),
            "pareto": frontier_summary(frontier, objectives),
        }


# -- manifest-only views (``campaign status`` / ``campaign report``) ----------

def manifest_status(manifest: dict) -> dict:
    """Point-in-time progress counts from a manifest alone."""
    cells = manifest.get("cells", [])
    by_source: dict[str, int] = {}
    for cell in cells:
        if cell.get("status") == "done":
            source = cell.get("source") or "unknown"
            by_source[source] = by_source.get(source, 0) + 1
    done = sum(by_source.values())
    return {
        "name": manifest.get("name"),
        "campaign": manifest.get("campaign"),
        "status": manifest.get("status"),
        "cells": len(cells),
        "done": done,
        "pending": len(cells) - done,
        "chunks_done": manifest.get("chunks_done", 0),
        "sources": dict(sorted(by_source.items())),
    }


def manifest_report(manifest: dict, objectives=None,
                    bench_dir: str | Path = DEFAULT_BENCH_DIR) -> dict:
    """Pareto frontier + trend from a manifest alone (no store access)."""
    spec_objectives = tuple(
        (manifest.get("spec") or {}).get("objectives")
        or ("latency", "power"))
    objectives = tuple(objectives) if objectives else spec_objectives
    done = [c for c in manifest.get("cells", []) if c.get("status") == "done"]
    frontier = pareto_frontier(done, objectives)
    status = manifest_status(manifest)
    summary = {
        "cells": status["cells"],
        "warm": sum(status["sources"].get(s, 0) for s in WARM_SOURCES),
        "cycles_per_sec": None,
        "wall_s": sum(c.get("wall_s") or 0.0 for c in done),
    }
    return {
        "status": status,
        "objectives": list(objectives),
        "pareto": frontier_summary(frontier, objectives),
        "frontier": frontier,
        "trend": trend_report(summary, bench_dir),
    }


# -- execution ----------------------------------------------------------------

def _run_chunk_local(cells, indices, config, params, store, jobs, emit):
    """Run one chunk through the sweep engine.

    Returns ``(records, report)`` where records are per-cell
    ``(index, source, wall_s, metrics, sim_cycles)`` tuples.
    """
    report = run_sweep(
        [cells[i] for i in indices],
        config=config, params=params, store=store, jobs=jobs,
        progress=(lambda event, _indices=indices: emit({
            **event, "index": _indices[event["index"]],
        })),
    )
    records = []
    for local, outcome in zip(indices, report.outcomes):
        source = "store" if outcome.cached else "sim"
        records.append((local, source, outcome.wall_s,
                        cell_metrics(outcome.result), outcome.sim_cycles))
    return records, report


def _run_chunk_serve(cells, indices, client,
                     emit) -> list[tuple[int, str, float, dict, int]]:
    """Drive one chunk through a running serve worker or cluster router.

    The request vocabulary comes from
    :func:`repro.serve.protocol.spec_fields`, so a campaign speaks exactly
    what the service parses.  When the endpoint is the cluster router, the
    response names the shard that settled each cell; it rides along in the
    progress event so a campaign's live feed shows placement.
    """
    records = []
    for i in indices:
        response = client.simulate_with_retry(**spec_fields(cells[i]))
        if not response.ok:
            raise CampaignError(
                f"serve rejected cell {cells[i].describe()!r} "
                f"({response.status}): "
                f"{response.payload.get('error', 'request failed')}")
        payload = response.payload
        source = payload.get("source", "computed")
        wall = float(payload.get("wall_s") or 0.0)
        records.append((i, source, wall, dict(payload.get("result") or {}),
                        0))
        event = {"event": "hit" if source in WARM_SOURCES else "done",
                 "index": i, "job": cells[i].describe(), "wall_s": wall}
        if payload.get("shard"):
            event["shard"] = payload["shard"]
        emit(event)
    return records


def run_campaign(
    spec: Union[CampaignSpec, str, Path],
    *,
    config: Optional[ExperimentConfig] = None,
    params: ArchitectureParams = DEFAULT_PARAMS,
    store: Union[ResultStore, str, Path, None] = None,
    directory: Union[str, Path, None] = None,
    jobs: int = 1,
    client: Optional["ServeClient"] = None,
    fresh: bool = False,
    max_chunks: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    registry: Optional["MetricsRegistry"] = None,
    bench_dir: str | Path = DEFAULT_BENCH_DIR,
) -> CampaignResult:
    """Run (or resume) a campaign; returns one :class:`CampaignResult`.

    ``spec`` is a :class:`CampaignSpec` or a path to a ``.toml``/``.json``
    spec file.  ``directory`` holds the checkpoint manifest (default
    ``benchmarks/results/campaigns/<name>``); an existing manifest for the
    same campaign digest resumes (completed cells are never re-submitted),
    a manifest for a *different* digest is refused unless ``fresh=True``.
    ``client`` (a :class:`~repro.serve.client.ServeClient`) drives cold
    cells through a running service instead of the local process pool.
    ``max_chunks`` bounds how many chunks this invocation executes —
    the checkpoint-and-stop primitive the resume tests (and incremental
    cron-style drivers) use.  ``registry`` receives campaign-level
    metrics (per-source cell counters, pending gauge, chunk counter).
    """
    if not isinstance(spec, CampaignSpec):
        spec = load_spec(spec)
    spec.validate()
    resolved_config = config or (FAST_CONFIG if spec.fast else DEFAULT_CONFIG)
    if spec.kernel is not None:
        import dataclasses

        resolved_config = dataclasses.replace(
            resolved_config,
            sim=dataclasses.replace(resolved_config.sim, kernel=spec.kernel))
    if store is None and client is None:
        store = ResultStore(DEFAULT_CACHE)
    elif not (store is None or isinstance(store, ResultStore)):
        store = ResultStore(store)
    directory = Path(directory) if directory is not None else (
        DEFAULT_CAMPAIGN_ROOT / spec.name)
    path = manifest_path(directory)

    start = time.perf_counter()
    cells = spec.expand(resolved_config)
    digests = [job_digest(cell, resolved_config, params) for cell in cells]
    digest = spec.digest(resolved_config, params)

    manifest = _new_manifest(spec, digest, cells, digests)
    carried = 0
    prior = None if fresh else load_manifest(path)
    if prior is not None:
        if prior.get("campaign") != digest:
            raise CampaignError(
                f"manifest {path} belongs to campaign "
                f"{str(prior.get('campaign'))[:12]}…, but this spec/config "
                f"digests to {digest[:12]}…; use a new directory or "
                "fresh=True")
        carried = _carry_over(manifest, prior)

    def emit(event: dict) -> None:
        if progress is not None:
            progress(event)

    def count_cell(source: str) -> None:
        if registry is not None:
            registry.counter("campaign_cells", source=source).inc()

    pending = [i for i, cell in enumerate(manifest["cells"])
               if cell["status"] != "done"]
    chunks = [pending[i:i + spec.chunk]
              for i in range(0, len(pending), spec.chunk)]
    profiler = Profiler()
    warm = cold = 0
    sim_cycles = 0
    sim_wall = 0.0
    chunks_run = 0

    for chunk_no, indices in enumerate(chunks):
        if max_chunks is not None and chunks_run >= max_chunks:
            break
        emit({"event": "chunk", "chunk": chunk_no + 1, "of": len(chunks),
              "cells": len(indices)})
        if client is not None:
            records = _run_chunk_serve(cells, indices, client, emit)
        else:
            records, report = _run_chunk_local(
                cells, indices, resolved_config, params, store, jobs, emit)
            profiler.merge(report.phase_profile())
            summary = report.summary()
            sim_cycles += summary["simulated_cycles"]
            sim_wall += summary["simulated_wall_s"]
        for i, source, wall, metrics, _cycles in records:
            manifest["cells"][i].update(
                status="done", source=source, wall_s=wall, metrics=metrics)
            count_cell(source)
            if source in WARM_SOURCES:
                warm += 1
            else:
                cold += 1
        chunks_run += 1
        manifest["chunks_done"] += 1
        remaining = sum(1 for cell in manifest["cells"]
                        if cell["status"] != "done")
        manifest["status"] = "done" if remaining == 0 else "running"
        with profiler.phase("checkpoint"):
            _write_manifest(path, manifest)
        if registry is not None:
            registry.counter("campaign_chunks").inc()
            registry.gauge("campaign_pending").set(remaining)

    if not chunks:
        # Nothing pending (fully carried over): still refresh the manifest
        # so its status reflects this invocation.
        manifest["status"] = "done"
        _write_manifest(path, manifest)
    if registry is not None:
        registry.gauge("campaign_pending").set(
            sum(1 for cell in manifest["cells"]
                if cell["status"] != "done"))

    return CampaignResult(
        spec=spec,
        digest=digest,
        directory=directory,
        manifest=manifest,
        warm=warm,
        cold=cold,
        carried=carried,
        wall_s=time.perf_counter() - start,
        sim_cycles=sim_cycles,
        sim_wall_s=sim_wall,
        chunks_run=chunks_run,
        profile=profiler.as_dict(),
    )
