"""Pareto reduction over campaign cells.

A campaign's deliverable is rarely the raw cell table — it is the set of
design points that are *not beaten everywhere*: the Pareto frontier over
the configured objectives (mean latency, power, area, fault drops — all
minimized; see :data:`repro.campaign.spec.OBJECTIVE_FIELDS`).  This module
computes that frontier over the JSON-safe cell records a campaign
manifest carries, so ``repro campaign report`` never re-opens the result
store, let alone re-simulates.

Dominance is the standard weak form: ``a`` dominates ``b`` when ``a`` is
no worse on every objective and strictly better on at least one.  Cells
with a missing or non-finite objective value (e.g. ``power_w`` of a
result without a power model) can never dominate and never survive — a
frontier only ever contains fully-measured points.  Ties (identical
vectors) all survive, and the frontier preserves campaign cell order, so
equal campaigns reduce to byte-identical frontiers.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.campaign.spec import OBJECTIVE_FIELDS, CampaignError


def objective_vector(
    metrics: dict, objectives: Sequence[str],
) -> Optional[tuple[float, ...]]:
    """The cell's objective values, or None if any is missing/non-finite."""
    values = []
    for objective in objectives:
        field = OBJECTIVE_FIELDS.get(objective)
        if field is None:
            raise CampaignError(
                f"unknown objective {objective!r}; "
                f"one of {sorted(OBJECTIVE_FIELDS)}")
        value = metrics.get(field)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return None
        value = float(value)
        if not math.isfinite(value):
            return None
        values.append(value)
    return tuple(values)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is no worse everywhere and better somewhere."""
    return (all(x <= y for x, y in zip(a, b))
            and any(x < y for x, y in zip(a, b)))


def pareto_frontier(
    cells: Sequence[dict], objectives: Sequence[str],
) -> list[dict]:
    """The non-dominated cells, in input order.

    ``cells`` are manifest cell records; each contributes its ``metrics``
    block.  Returns new dicts: the cell record plus an ``objectives``
    map of the values it was judged on.
    """
    if not objectives:
        raise CampaignError("at least one objective is required")
    vectors: list[Optional[tuple[float, ...]]] = [
        objective_vector(cell.get("metrics") or {}, objectives)
        for cell in cells
    ]
    frontier = []
    for i, vec in enumerate(vectors):
        if vec is None:
            continue
        beaten = any(
            other is not None and dominates(other, vec)
            for j, other in enumerate(vectors) if j != i
        )
        if not beaten:
            frontier.append({
                **cells[i],
                "objectives": dict(zip(objectives, vec)),
            })
    return frontier


def frontier_summary(
    frontier: Sequence[dict], objectives: Sequence[str],
) -> dict:
    """JSON-safe headline block: size + per-objective best values."""
    best = {}
    for objective in objectives:
        values = [cell["objectives"][objective] for cell in frontier]
        best[objective] = min(values) if values else None
    return {
        "size": len(frontier),
        "objectives": list(objectives),
        "best": best,
    }
