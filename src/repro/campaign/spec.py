"""Declarative campaign specs: axes + sampling, expanded to JobSpecs.

A :class:`CampaignSpec` describes a whole scenario sweep — the grid axes
(design styles, link widths, workloads, seeds, fault schedules, topology
providers, adaptive routing), an optional seeded random sample with a
cell budget, and the reduction objectives — as one frozen dataclass of
plain values.  It can
be written by hand, loaded from a TOML/JSON file (:func:`load_spec`), or
picked from the named registry in :mod:`repro.experiments.campaigns`.

Expansion is deterministic: :meth:`CampaignSpec.expand` walks the
topology axis outermost, then the fault axis, reuses
:func:`~repro.exec.jobs.sweep_grid` for each slice, normalizes every
cell against the run config, and (when a ``sample`` budget is set)
keeps a seeded, order-preserving subset.  Equal
specs therefore always name the same digest-addressed cells, which is
what makes a campaign resumable: the manifest and the result store both
key on the same addresses the sweep engine and the serving tier use.

Like job digests, the campaign digest (:meth:`CampaignSpec.digest`)
strips the simulation-kernel choice and the reduction-only knobs
(``objectives``, ``chunk``): neither changes any simulated result, so
neither may fork a campaign's identity.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields, replace
from pathlib import Path
from typing import Optional, Sequence

from repro.exec.jobs import JobSpec, normalize_spec, sweep_grid
from repro.experiments.config import ExperimentConfig
from repro.experiments.export import jsonable
from repro.params import ArchitectureParams


class CampaignError(Exception):
    """An invalid campaign spec, manifest, or run request."""


#: Reduction objectives a campaign may name; every one is *minimized*.
#: Values are the keys of a cell's metrics block (see
#: :func:`repro.campaign.runner.cell_metrics`).
OBJECTIVE_FIELDS: dict[str, str] = {
    "latency": "avg_latency",
    "flit_latency": "avg_flit_latency",
    "power": "power_w",
    "area": "area_mm2",
    "fault_drops": "fault_drops",
}

#: Spec fields that never change a simulated result and therefore stay
#: out of the campaign digest (see :meth:`CampaignSpec.digest`).
DIGEST_NEUTRAL_FIELDS = ("kernel", "objectives", "chunk")


@dataclass(frozen=True)
class CampaignSpec:
    """One declarative scenario campaign: axes, sampling, objectives."""

    name: str = "campaign"
    styles: tuple[str, ...] = ("baseline",)
    widths: tuple[int, ...] = (16,)
    workloads: tuple[str, ...] = ("uniform",)
    seeds: tuple[Optional[int], ...] = (None,)
    adaptive_routing: bool = False
    #: Fault-schedule spec strings; ``""`` is the fault-free slice.
    faults: tuple[str, ...] = ("",)
    #: Substrate providers to sweep (registered topology names); the
    #: default mesh-only axis keeps historical campaign digests.
    topologies: tuple[str, ...] = ("mesh",)
    #: Closed-loop control axis: ``None`` is the offline slice, a
    #: :class:`~repro.control.loop.ControlConfig` spec string (``""`` for
    #: defaults) runs the slice online; the default offline-only axis
    #: keeps historical campaign digests.
    control: tuple[Optional[str], ...] = (None,)
    #: Cell budget for seeded random sampling (None = the full grid).
    sample: Optional[int] = None
    sample_seed: int = 0
    #: Cells per checkpointed chunk (the resume granularity).
    chunk: int = 8
    #: Reduction objectives, each a key of :data:`OBJECTIVE_FIELDS`.
    objectives: tuple[str, ...] = ("latency", "power")
    #: Cycle-execution kernel for fresh cells (digest-neutral).
    kernel: Optional[str] = None
    fast: bool = False

    def __post_init__(self) -> None:
        for name in ("styles", "widths", "workloads", "seeds", "faults",
                     "topologies", "objectives", "control"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    # -- validation ----------------------------------------------------------

    def validate(self) -> "CampaignSpec":
        """Check every axis value; raises :class:`CampaignError`."""
        from repro.serve.protocol import (
            DESIGN_STYLES, LINK_WIDTHS, known_workloads,
        )

        if not self.name or not isinstance(self.name, str):
            raise CampaignError("campaign 'name' must be a non-empty string")
        for axis in ("styles", "widths", "workloads", "faults", "topologies",
                     "objectives", "control"):
            if not getattr(self, axis):
                raise CampaignError(f"campaign {axis!r} must be non-empty")
        online = False
        for entry in self.control:
            if entry is None:
                continue
            if not isinstance(entry, str):
                raise CampaignError(
                    "'control' entries must be spec strings or null")
            online = True
            from repro.control.loop import ControlConfig

            try:
                ControlConfig.from_spec(entry)
            except ValueError as exc:
                raise CampaignError(
                    f"invalid control spec {entry!r}: {exc}") from exc
        for style in self.styles:
            if style not in DESIGN_STYLES:
                raise CampaignError(
                    f"unknown design style {style!r}; "
                    f"one of {list(DESIGN_STYLES)}")
            if online:
                from repro.control.run import CONTROL_STYLES

                if style not in CONTROL_STYLES:
                    raise CampaignError(
                        f"an online control axis accepts styles "
                        f"{list(CONTROL_STYLES)}, got {style!r}")
        for width in self.widths:
            if width not in LINK_WIDTHS:
                raise CampaignError(
                    f"unknown link width {width!r}; "
                    f"one of {list(LINK_WIDTHS)}")
        names = known_workloads()
        # A phased composite workload only means something to a closed
        # loop, so it needs every control slice online.
        all_online = online and None not in self.control
        for workload in self.workloads:
            if workload in names:
                continue
            from repro.control.run import PHASED_PREFIX, parse_phased_workload

            if all_online and workload.startswith(PHASED_PREFIX):
                try:
                    phases, _ = parse_phased_workload(workload)
                except ValueError as exc:
                    raise CampaignError(str(exc)) from exc
                unknown = [p for p in phases if p not in names]
                if unknown:
                    raise CampaignError(
                        f"unknown workloads {unknown} in {workload!r}")
                continue
            if workload.startswith(PHASED_PREFIX):
                raise CampaignError(
                    f"phased workload {workload!r} needs an all-online "
                    "'control' axis")
            raise CampaignError(f"unknown workload {workload!r}")
        for seed in self.seeds:
            if seed is not None and not isinstance(seed, int):
                raise CampaignError("'seeds' entries must be integers or null")
        for objective in self.objectives:
            if objective not in OBJECTIVE_FIELDS:
                raise CampaignError(
                    f"unknown objective {objective!r}; "
                    f"one of {sorted(OBJECTIVE_FIELDS)}")
        for spec in self.faults:
            if not isinstance(spec, str):
                raise CampaignError("'faults' entries must be spec strings")
            if spec:
                from repro.faults import as_schedule

                try:
                    schedule = as_schedule(spec)
                except (ValueError, TypeError) as exc:
                    raise CampaignError(
                        f"invalid fault spec {spec!r}: {exc}") from exc
                if schedule is None:
                    raise CampaignError(
                        f"fault spec {spec!r} names no faults; use \"\" "
                        "for the fault-free slice")
        from repro.noc.topology import TOPOLOGIES

        for topology in self.topologies:
            if topology not in TOPOLOGIES:
                raise CampaignError(
                    f"unknown topology {topology!r}; "
                    f"one of {sorted(TOPOLOGIES)}")
        if self.sample is not None and self.sample <= 0:
            raise CampaignError("'sample' must be a positive cell budget")
        if self.chunk <= 0:
            raise CampaignError("'chunk' must be positive")
        if self.kernel is not None:
            from repro.noc.kernel import KERNELS

            if self.kernel not in KERNELS:
                raise CampaignError(
                    f"unknown kernel {self.kernel!r}; "
                    f"one of {sorted(KERNELS)}")
        return self

    # -- expansion -----------------------------------------------------------

    def grid_size(self) -> int:
        """Cells in the full grid, before any sampling."""
        return (len(self.styles) * len(self.widths) * len(self.workloads)
                * len(self.seeds) * len(self.faults) * len(self.topologies)
                * len(self.control))

    def expand(self, config: ExperimentConfig) -> list[JobSpec]:
        """The campaign's cells, normalized, in deterministic order.

        The control axis is outermost, then topologies, then faults;
        within a (control, topology, fault) slice the cells come in
        :func:`~repro.exec.jobs.sweep_grid` order (styles outermost).
        A ``sample`` budget keeps a seeded random subset *in grid order*,
        so equal (spec, config) pairs always expand identically.
        """
        self.validate()
        cells: list[JobSpec] = []
        for control_spec in self.control:
            for topology in self.topologies:
                for fault_spec in self.faults:
                    cells.extend(sweep_grid(
                        self.styles, self.widths, self.workloads,
                        adaptive_routing=self.adaptive_routing,
                        seeds=self.seeds,
                        faults=fault_spec or None,
                        topology=topology,
                        control=control_spec,
                    ))
        if self.sample is not None and self.sample < len(cells):
            rng = random.Random(self.sample_seed)
            keep = sorted(rng.sample(range(len(cells)), self.sample))
            cells = [cells[i] for i in keep]
        return [normalize_spec(cell, config) for cell in cells]

    # -- identity ------------------------------------------------------------

    def digest(self, config: ExperimentConfig,
               params: ArchitectureParams) -> str:
        """Stable SHA-256 content digest of (spec, config, params).

        The same construction as :func:`~repro.exec.jobs.job_digest`,
        minus the fields that cannot change any simulated result: the
        kernel choice (bit-identical by contract) and the reduction-only
        ``objectives``/``chunk`` knobs.  Like the job digest's handling
        of the topology provider, the default mesh-only ``topologies``
        axis is stripped so pre-provider-layer campaign manifests keep
        their identities; any other axis legitimately forks the digest.
        """
        spec_blob = jsonable(self)
        for neutral in DIGEST_NEUTRAL_FIELDS:
            spec_blob.pop(neutral, None)
        if tuple(spec_blob.get("topologies", ())) == ("mesh",):
            spec_blob.pop("topologies", None)
        # Same convention for the control axis: the default offline-only
        # axis must keep pre-control-plane campaign identities.
        if tuple(spec_blob.get("control", ())) == (None,):
            spec_blob.pop("control", None)
        blob = {
            "campaign": spec_blob,
            "config": jsonable(config),
            "params": jsonable(params),
        }
        blob["config"].get("sim", {}).pop("kernel", None)
        blob["params"].get("simulation", {}).pop("kernel", None)
        # Same mesh-default strip as job_digest: default-provider params
        # must not fork pre-provider-layer campaign identities.
        mesh_blob = blob["params"].get("mesh", {})
        if mesh_blob.get("provider", "mesh") == "mesh":
            mesh_blob.pop("provider", None)
            mesh_blob.pop("concentration", None)
        text = json.dumps(blob, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


#: File keys accepted by :func:`load_spec` (anything else is rejected).
_SPEC_KEYS = frozenset(f.name for f in fields(CampaignSpec))

#: Keys that arrive as lists and land as tuples.
_LIST_KEYS = ("styles", "widths", "workloads", "seeds", "faults",
              "topologies", "objectives", "control")


def spec_from_dict(data: dict, *, source: str = "<dict>") -> CampaignSpec:
    """Build and validate a :class:`CampaignSpec` from a plain mapping."""
    if not isinstance(data, dict):
        raise CampaignError(f"{source}: campaign spec must be a mapping")
    unknown = set(data) - _SPEC_KEYS
    if unknown:
        raise CampaignError(
            f"{source}: unknown campaign keys {sorted(unknown)}; "
            f"known keys: {sorted(_SPEC_KEYS)}")
    coerced = dict(data)
    for key in _LIST_KEYS:
        if key in coerced:
            value = coerced[key]
            if not isinstance(value, (list, tuple)):
                raise CampaignError(f"{source}: {key!r} must be a list")
            coerced[key] = tuple(value)
    try:
        spec = CampaignSpec(**coerced)
    except TypeError as exc:
        raise CampaignError(f"{source}: {exc}") from exc
    try:
        return spec.validate()
    except CampaignError as exc:
        raise CampaignError(f"{source}: {exc}") from exc


def load_spec(path: str | Path) -> CampaignSpec:
    """Load a campaign spec file (``.toml`` or ``.json``).

    TOML cannot spell ``null``, so a TOML ``seeds`` axis must list
    concrete integers; JSON specs may use ``null`` for the config-default
    seed.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CampaignError(f"cannot read campaign spec {path}: {exc}") from exc
    if path.suffix.lower() == ".toml":
        import tomllib

        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as exc:
            raise CampaignError(f"{path}: invalid TOML: {exc}") from exc
    else:
        try:
            data = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CampaignError(f"{path}: invalid JSON: {exc}") from exc
    return spec_from_dict(data, source=str(path))


def with_kernel(spec: CampaignSpec, kernel: Optional[str]) -> CampaignSpec:
    """A copy of ``spec`` requesting ``kernel`` (None leaves it alone)."""
    return spec if kernel is None else replace(spec, kernel=kernel)


def with_topologies(
    spec: CampaignSpec, topologies: Optional[Sequence[str]],
) -> CampaignSpec:
    """A copy of ``spec`` on the given topology axis (None leaves it alone).

    Unlike :func:`with_kernel` this is *not* digest-neutral: a different
    substrate simulates different results, so the campaign identity (and
    its manifest) forks — except for the default mesh-only axis.
    """
    if topologies is None:
        return spec
    return replace(spec, topologies=tuple(topologies))
