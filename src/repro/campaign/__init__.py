"""Declarative, resumable scenario campaigns with Pareto reduction.

The scenario space of this repo — traffic patterns x design styles x
link widths x fault schedules x seeds — long ago outgrew hand-written
experiment scripts.  This package makes the whole sweep a first-class,
addressable object (ROADMAP item 5), sitting *above* the execution and
serving tiers in the layer diagram:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, a frozen
  declarative description of the grid axes, optional seeded sampling
  with a cell budget, and the reduction objectives; loadable from
  TOML/JSON (:func:`load_spec`) and expanded deterministically to the
  same digest-addressed :class:`~repro.exec.jobs.JobSpec` cells the
  sweep engine and serving tier run;
* :mod:`repro.campaign.runner` — :func:`run_campaign`, the chunked,
  checkpointed executor: a ``campaign.json`` manifest per campaign
  directory records per-cell status and metrics, so a killed campaign
  restarts with zero recomputation (manifest skip + warm store hits);
  cold cells flow through :func:`~repro.exec.engine.run_sweep` or a
  running ``repro serve`` instance (``client=ServeClient(...)``);
* :mod:`repro.campaign.pareto` — the reduction layer: Pareto frontiers
  over configurable minimized objectives (latency, power, area, fault
  drops);
* :mod:`repro.campaign.trend` — campaign aggregates lined up against
  the committed ``BENCH_*.json`` history.

Quick start::

    from repro.campaign import CampaignSpec, run_campaign
    spec = CampaignSpec(name="demo", styles=("baseline", "static"),
                        widths=(16, 8), workloads=("uniform",))
    result = run_campaign(spec, store="benchmarks/results/cache")
    result.pareto()            # non-dominated (latency, power) cells
    result.summary()           # warm/cold counts, profile, frontier size

or, from the shell::

    python -m repro campaign run --spec e-series --json
    python -m repro campaign report --name e-series --json
"""

from repro.campaign.pareto import (
    dominates, frontier_summary, objective_vector, pareto_frontier,
)
from repro.campaign.runner import (
    DEFAULT_CAMPAIGN_ROOT, MANIFEST_NAME, MANIFEST_SCHEMA, CampaignResult,
    cell_metrics, load_manifest, manifest_path, manifest_report,
    manifest_status, run_campaign,
)
from repro.campaign.spec import (
    OBJECTIVE_FIELDS, CampaignError, CampaignSpec, load_spec, spec_from_dict,
)
from repro.campaign.trend import trend_report

__all__ = [
    "CampaignError",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_CAMPAIGN_ROOT",
    "MANIFEST_NAME",
    "MANIFEST_SCHEMA",
    "OBJECTIVE_FIELDS",
    "cell_metrics",
    "dominates",
    "frontier_summary",
    "load_manifest",
    "load_spec",
    "manifest_path",
    "manifest_report",
    "manifest_status",
    "objective_vector",
    "pareto_frontier",
    "run_campaign",
    "spec_from_dict",
    "trend_report",
]
