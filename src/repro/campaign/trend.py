"""Trend reports: campaign aggregates vs the committed BENCH_* history.

The repo commits performance records (``benchmarks/results/BENCH_b0.json``
for raw engine throughput, ``BENCH_serve.json`` for the serving tier,
``BENCH_campaign.json`` for the campaign harness itself).  A campaign run
produces the same aggregate surfaces — simulated cycles/second over its
cold cells, warm-hit rate over its whole cell set — so every campaign
doubles as a regression probe: the trend report lines its aggregates up
against the committed history and reports the ratio.

Missing history never fails a report (a fresh checkout, a CI sandbox):
the entry is emitted with ``baseline: null`` and a note instead.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

#: Default location of the committed benchmark history.
DEFAULT_BENCH_DIR = Path("benchmarks/results")


def _load_bench(bench_dir: Path, name: str) -> Optional[dict]:
    try:
        return json.loads((bench_dir / name).read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _entry(campaign_value, baseline, *, higher_is_better: bool,
           note: Optional[str] = None) -> dict:
    ratio = None
    if (isinstance(campaign_value, (int, float))
            and isinstance(baseline, (int, float)) and baseline):
        ratio = campaign_value / baseline
    return {
        "campaign": campaign_value,
        "baseline": baseline,
        "ratio": ratio,
        "higher_is_better": higher_is_better,
        **({"note": note} if note else {}),
    }


def trend_report(summary: dict, bench_dir: str | Path = DEFAULT_BENCH_DIR,
                 ) -> dict:
    """Line a campaign's aggregates up against the committed history.

    ``summary`` is :meth:`CampaignResult.summary`'s shape (cells, warm,
    cold, simulated cycles/wall).  Entries:

    * ``cycles_per_sec`` — this campaign's cold-cell simulation
      throughput vs the committed B0 engine record;
    * ``warm_hit_rate`` — this campaign's warm fraction vs the serving
      benchmark's steady-state warm-hit rate;
    * ``campaign_wall_s`` — wall time vs the last committed campaign
      bench (when cell counts match; otherwise noted, not compared).
    """
    bench_dir = Path(bench_dir)
    report: dict[str, dict] = {}

    b0 = _load_bench(bench_dir, "BENCH_b0.json")
    cps = summary.get("cycles_per_sec") or None
    baseline_cps = (b0 or {}).get("engine", {}).get("cycles_per_sec")
    report["cycles_per_sec"] = _entry(
        cps, baseline_cps, higher_is_better=True,
        note=None if b0 else "no committed BENCH_b0.json",
    )
    if cps is None:
        report["cycles_per_sec"]["note"] = "no cold cells simulated"

    serve = _load_bench(bench_dir, "BENCH_serve.json")
    cells = summary.get("cells") or 0
    warm_rate = (summary.get("warm", 0) / cells) if cells else None
    baseline_warm = (serve or {}).get("rates", {}).get("warm_hit")
    report["warm_hit_rate"] = _entry(
        warm_rate, baseline_warm, higher_is_better=True,
        note=None if serve else "no committed BENCH_serve.json",
    )

    history = _load_bench(bench_dir, "BENCH_campaign.json")
    wall = summary.get("wall_s")
    if history is None:
        report["campaign_wall_s"] = _entry(
            wall, None, higher_is_better=False,
            note="no committed BENCH_campaign.json")
    elif history.get("cells") != cells:
        report["campaign_wall_s"] = _entry(
            wall, None, higher_is_better=False,
            note=f"committed campaign ran {history.get('cells')} cells, "
                 f"this one {cells}; not comparable")
    else:
        report["campaign_wall_s"] = _entry(
            wall, history.get("cold_wall_s"), higher_is_better=False)
    return report
