"""The paper's contribution: the adaptable RF-I-enabled NoC.

* :mod:`repro.core.overlay` — band-to-shortcut tuning over access points;
* :mod:`repro.core.reconfig` — per-application select/tune/update flow;
* :mod:`repro.core.architectures` — factories for every design point the
  evaluation compares (baseline, static, wire, adaptive, adaptive+multicast).
"""

from repro.core.architectures import (
    DesignPoint, adaptive_rf, adaptive_rf_multicast, baseline, static_rf,
    wire_static,
)
from repro.core.online import (
    OnlineReconfigurator, PhasedSource, ReconfigurationEvent,
)
from repro.core.overlay import OverlayReport, RFIOverlay
from repro.core.reconfig import (
    TUNING_CYCLES, ReconfigurationController, ReconfigurationPlan,
)

__all__ = [
    "DesignPoint",
    "OnlineReconfigurator",
    "PhasedSource",
    "ReconfigurationEvent",
    "OverlayReport",
    "RFIOverlay",
    "ReconfigurationController",
    "ReconfigurationPlan",
    "TUNING_CYCLES",
    "adaptive_rf",
    "adaptive_rf_multicast",
    "baseline",
    "static_rf",
    "wire_static",
]
