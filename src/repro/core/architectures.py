"""Factories for the paper's NoC design points.

Every design evaluated in Section 5 is expressible here:

* ``baseline(link_bytes)`` — plain mesh, XY-equivalent shortest-path routing
  (16 B, 8 B, 4 B variants);
* ``static_rf(link_bytes)`` — mesh + 16 architecture-specific RF-I shortcuts
  fixed at design time (Fig 2b);
* ``wire_static(link_bytes)`` — the same static shortcuts implemented as
  buffered RC wires with distance-proportional multi-cycle latency (the
  "Mesh Wire Shortcuts" comparison of Fig 10a);
* ``adaptive_rf(link_bytes, num_access_points, frequency)`` — mesh + an
  adaptive overlay reconfigured per application from a profiled
  communication-frequency matrix (Fig 2c);
* ``adaptive_rf_multicast(...)`` — 15 adaptive shortcuts + the multicast
  band (the "MC+SC" design of Section 5.2).

A :class:`DesignPoint` is reusable: :meth:`DesignPoint.new_network` builds a
fresh simulation network (statistics and buffers are single-use) while the
expensive artifacts — selection, tables — are computed once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.overlay import RFIOverlay
from repro.core.reconfig import ReconfigurationController, ReconfigurationPlan
from repro.noc.network import Network
from repro.noc.routing import RoutingPolicy, RoutingTables, Shortcut
from repro.noc.topology import TopologyProvider, build_topology
from repro.params import DEFAULT_PARAMS, ArchitectureParams
from repro.shortcuts.selection import (
    SelectionConfig, select_architecture_shortcuts,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.model import FaultSchedule


@dataclass
class DesignPoint:
    """One fully-resolved NoC architecture, ready to instantiate."""

    name: str
    params: ArchitectureParams
    topology: TopologyProvider
    tables: RoutingTables
    overlay: Optional[RFIOverlay] = None
    policy: RoutingPolicy = field(default_factory=RoutingPolicy)
    shortcut_style: str = "rf"
    plan: Optional[ReconfigurationPlan] = None
    #: The fault schedule this design was degraded for (see
    #: :func:`repro.faults.degraded_design`); structural faults are already
    #: folded into ``tables``, runtime ones become a per-network FaultState.
    faults: Optional["FaultSchedule"] = None

    @property
    def shortcuts(self) -> list[Shortcut]:
        """The shortcut edges overlaid on this design's mesh."""
        return list(self.tables.shortcuts)

    @property
    def link_bytes(self) -> int:
        """Mesh link width of this design point, in bytes."""
        return self.params.mesh.link_bytes

    def new_network(self, kernel: Optional[str] = None) -> Network:
        """A fresh simulation instance of this design.

        ``kernel`` selects the cycle-execution kernel (a registered name:
        ``"fast"`` / ``"batch"`` / ``"reference"``); None takes the
        default.  Raises
        :class:`~repro.noc.kernel.KernelCapabilityError` when the chosen
        kernel cannot execute this design's fault schedule.
        """
        network = Network(
            self.topology, self.params, self.tables, self.policy,
            shortcut_style=self.shortcut_style,
            **({} if kernel is None else {"kernel": kernel}),
        )
        if self.faults is not None:
            from repro.faults.state import FaultState

            state = FaultState(
                self.faults, self.tables, self.topology, self.params.rfi
            )
            if not state.inert:
                network.fault_state = state
                from repro.noc.kernel import (
                    require_capabilities, required_capabilities,
                )

                require_capabilities(
                    network.kernel.name,
                    required_capabilities(network),
                    "this design's fault schedule",
                )
        return network


def _resolve(
    params: Optional[ArchitectureParams], link_bytes: Optional[int]
) -> ArchitectureParams:
    params = params or DEFAULT_PARAMS
    if link_bytes is not None:
        params = params.with_link_bytes(link_bytes)
    return params


def baseline(
    link_bytes: int = 16,
    params: Optional[ArchitectureParams] = None,
    topology: Optional[TopologyProvider] = None,
) -> DesignPoint:
    """The mesh baseline at a given link width."""
    params = _resolve(params, link_bytes)
    topo = topology or build_topology(params.mesh)
    return DesignPoint(
        name=f"baseline-{link_bytes}B",
        params=params,
        topology=topo,
        tables=RoutingTables(topo, []),
    )


def static_rf(
    link_bytes: int = 16,
    params: Optional[ArchitectureParams] = None,
    topology: Optional[TopologyProvider] = None,
    method: str = "greedy",
    budget: Optional[int] = None,
) -> DesignPoint:
    """Mesh + architecture-specific (design-time) RF-I shortcuts."""
    params = _resolve(params, link_bytes)
    topo = topology or build_topology(params.mesh)
    config = SelectionConfig(
        budget=budget if budget is not None else params.rfi.shortcut_budget
    )
    shortcuts = select_architecture_shortcuts(topo, config, method)
    overlay = RFIOverlay.for_static_shortcuts(topo, shortcuts, params.rfi)
    return DesignPoint(
        name=f"static-{link_bytes}B",
        params=params,
        topology=topo,
        tables=RoutingTables(topo, shortcuts),
        overlay=overlay,
    )


def wire_static(
    link_bytes: int = 16,
    params: Optional[ArchitectureParams] = None,
    topology: Optional[TopologyProvider] = None,
    method: str = "greedy",
) -> DesignPoint:
    """The static shortcuts re-implemented in buffered RC wire (Fig 10a)."""
    point = static_rf(link_bytes, params, topology, method)
    return DesignPoint(
        name=f"wire-static-{link_bytes}B",
        params=point.params,
        topology=point.topology,
        tables=point.tables,
        overlay=None,                 # no RF circuitry: these are wires
        shortcut_style="wire",
    )


def adaptive_rf(
    frequency: np.ndarray,
    link_bytes: int = 16,
    num_access_points: int = 50,
    params: Optional[ArchitectureParams] = None,
    topology: Optional[TopologyProvider] = None,
    use_regions: bool = True,
    adaptive_routing: bool = False,
) -> DesignPoint:
    """Mesh + adaptive overlay reconfigured for one application profile."""
    params = _resolve(params, link_bytes)
    topo = topology or build_topology(params.mesh)
    overlay = RFIOverlay(
        topo, topo.rf_enabled_routers(num_access_points), params.rfi,
        adaptive=True,
    )
    controller = ReconfigurationController(topo, overlay, use_regions=use_regions)
    plan = controller.reconfigure(frequency)
    return DesignPoint(
        name=f"adaptive{num_access_points}-{link_bytes}B",
        params=params,
        topology=topo,
        tables=plan.tables,
        overlay=overlay,
        policy=RoutingPolicy(adaptive=adaptive_routing),
        plan=plan,
    )


def adaptive_rf_multicast(
    frequency: np.ndarray,
    link_bytes: int = 16,
    num_access_points: int = 50,
    params: Optional[ArchitectureParams] = None,
    topology: Optional[TopologyProvider] = None,
    transmitter: Optional[int] = None,
) -> DesignPoint:
    """15 adaptive shortcuts + the RF multicast band (Section 5.2 'MC+SC')."""
    params = _resolve(params, link_bytes)
    topo = topology or build_topology(params.mesh)
    aps = topo.rf_enabled_routers(num_access_points)
    overlay = RFIOverlay(topo, aps, params.rfi, adaptive=True)
    if transmitter is None:
        transmitter = _default_multicast_transmitter(topo, aps)
    controller = ReconfigurationController(topo, overlay)
    plan = controller.reconfigure(
        frequency, multicast=True, multicast_transmitter=transmitter
    )
    return DesignPoint(
        name=f"adaptive{num_access_points}+mc-{link_bytes}B",
        params=params,
        topology=topo,
        tables=plan.tables,
        overlay=overlay,
        plan=plan,
    )


def _default_multicast_transmitter(topo: TopologyProvider, aps: list[int]) -> int:
    """The access point nearest a cluster's central cache bank."""
    ap_set = set(aps)
    for cluster in range(len(topo.cache_clusters)):
        central = topo.central_bank(cluster)
        if central in ap_set:
            return central
    # Fall back to the access point closest to any central bank.
    centrals = [topo.central_bank(i) for i in range(len(topo.cache_clusters))]
    return min(
        aps,
        key=lambda r: min(topo.manhattan(r, c) for c in centrals),
    )
