"""Per-application reconfiguration of the adaptive overlay (Section 3.2).

A reconfiguration is the three-step sequence the paper describes:

1. **Shortcut selection** — run the application-specific (region-aware)
   selection over the profiled communication-frequency matrix, restricted to
   the overlay's access points;
2. **Transmitter/receiver tuning** — retune every mixer to realize the
   selected shortcuts (and optionally the multicast channel);
3. **Routing-table updates** — rebuild the shortest-path tables.  With all
   routers updated in parallel through a single write port, this costs one
   cycle per *other* router (99 cycles on the 10x10 mesh), amortized against
   the application's entire execution (the paper overlaps it with the
   context switch).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.overlay import RFIOverlay
from repro.noc.routing import RoutingTables, Shortcut
from repro.noc.topology import TopologyProvider
from repro.shortcuts.region import select_region_shortcuts
from repro.shortcuts.selection import (
    SelectionConfig, select_application_shortcuts,
)

#: Cycles to retune a mixer pair; small and overlapped, but accounted for.
TUNING_CYCLES = 4


@dataclass(frozen=True)
class ReconfigurationPlan:
    """Everything produced by one reconfiguration."""

    shortcuts: tuple[Shortcut, ...]
    tables: RoutingTables
    multicast_receivers: tuple[int, ...]
    table_update_cycles: int
    tuning_cycles: int

    @property
    def total_overhead_cycles(self) -> int:
        """Cost charged before the application starts (overlappable)."""
        return self.table_update_cycles + self.tuning_cycles


class ReconfigurationController:
    """Drives select -> tune -> update for an adaptive overlay."""

    def __init__(
        self,
        topology: TopologyProvider,
        overlay: RFIOverlay,
        budget: int | None = None,
        use_regions: bool = True,
    ):
        if not overlay.adaptive:
            raise ValueError("only adaptive overlays can be reconfigured")
        self.topology = topology
        self.overlay = overlay
        self.budget = (
            budget if budget is not None else overlay.rfi_params.shortcut_budget
        )
        self.use_regions = use_regions

    def _selection_config(
        self, budget: int, extra_forbidden: frozenset[int] = frozenset(),
    ) -> SelectionConfig:
        return SelectionConfig(
            budget=budget,
            allowed=set(self.overlay.access_points),
            extra_forbidden=set(extra_forbidden),
        )

    def table_update_cycles(self) -> int:
        """One cycle per other router, all tables written in parallel."""
        return self.topology.num_routers - 1

    def reconfigure(
        self,
        frequency: np.ndarray,
        multicast: bool = False,
        multicast_transmitter: int | None = None,
    ) -> ReconfigurationPlan:
        """Adapt the overlay to a profiled communication-frequency matrix.

        With ``multicast=True`` one band is reserved as the broadcast
        channel (so only budget - 1 shortcuts are placed — the paper's
        "MC+SC" point uses 15 shortcuts) and every access-point receiver not
        used by a shortcut is tuned to it.
        """
        self.overlay.clear()
        budget = self.budget - (1 if multicast else 0)
        if multicast:
            if multicast_transmitter is None:
                raise ValueError("multicast requires a transmitter access point")
            self.overlay.configure_multicast(multicast_transmitter)
        # The multicast transmitter's Tx is taken; exclude it as a source.
        # Passed through the constructor so the config stays value-like.
        forbidden = (
            frozenset({multicast_transmitter}) if multicast else frozenset()
        )
        config = self._selection_config(budget, forbidden)
        if self.use_regions:
            shortcuts = select_region_shortcuts(self.topology, frequency, config)
        else:
            shortcuts = select_application_shortcuts(self.topology, frequency, config)
        # configure_shortcuts re-tunes any multicast-tuned Rx it needs.
        self.overlay.configure_shortcuts(shortcuts)
        tables = RoutingTables(self.topology, shortcuts)
        return ReconfigurationPlan(
            shortcuts=tuple(shortcuts),
            tables=tables,
            multicast_receivers=tuple(self.overlay.multicast_receivers),
            table_update_cycles=self.table_update_cycles(),
            tuning_cycles=TUNING_CYCLES,
        )
