"""Online (runtime) reconfiguration — the paper's stated extension.

Section 3.2 notes shortcut selection "can be done ahead of time by the
application writer or compiler, or **at run time by the operating system, a
hypervisor, or in the hardware itself**", but the paper only evaluates
once-per-application reconfiguration from an offline profile.  This module
implements the runtime variant:

* the inter-router communication-frequency matrix F(x, y) is accumulated
  from live injections (the "event counters in our network");
* every ``interval_cycles`` the controller re-runs application-specific
  selection on the (exponentially decayed) window, retunes the mixers, and
  swaps the routing tables;
* the reconfiguration cost is charged faithfully: injection stops, the
  network drains (in-flight wormholes may span links about to retune), and
  execution pauses for the tuning + 99-cycle table-update overhead before
  traffic resumes.

The result is a NoC that tracks *phase changes* within a workload — see
``examples/online_reconfiguration.py``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.reconfig import ReconfigurationController
from repro.noc.network import Network


class Phase(enum.Enum):
    """Reconfiguration state machine phases."""
    MEASURE = "measure"
    DRAIN = "drain"
    PAUSE = "pause"


@dataclass
class ReconfigurationEvent:
    """One completed runtime reconfiguration (for inspection/telemetry)."""

    cycle: int
    drain_cycles: int
    overhead_cycles: int
    shortcuts: tuple


class OnlineReconfigurator:
    """Traffic-source wrapper that adapts the overlay while running.

    Wrap any source exposing ``sample_messages(cycle)``; use the wrapper as
    the simulator's traffic source.  Statistics caveat: cycles spent
    draining/paused are real execution cycles, so latency measured across a
    reconfiguration includes its cost — that is the point.
    """

    def __init__(
        self,
        source,
        controller: ReconfigurationController,
        interval_cycles: int = 4_000,
        decay: float = 0.5,
        min_window_messages: int = 200,
        drain_deadline_cycles: int | None = None,
    ):
        if not (0.0 <= decay <= 1.0):
            raise ValueError("decay must be in [0, 1]")
        if drain_deadline_cycles is not None and drain_deadline_cycles <= 0:
            raise ValueError("drain_deadline_cycles must be positive")
        self.source = source
        self.controller = controller
        self.interval_cycles = interval_cycles
        self.decay = decay
        self.min_window_messages = min_window_messages
        self.drain_deadline_cycles = drain_deadline_cycles
        self.drain_timeouts = 0
        n = controller.topology.num_routers
        self.window = np.zeros((n, n))
        self.phase = Phase.MEASURE
        self.next_reconfig_at = interval_cycles
        self.resume_at = 0
        self._drain_started = 0
        self.events: list[ReconfigurationEvent] = []

    # -- per-cycle driver ---------------------------------------------------

    def tick(self, network: Network) -> None:
        """Per-cycle driver: measure, drain, reconfigure, or resume."""
        cycle = network.cycle
        if self.phase is Phase.MEASURE:
            for msg in self.source.sample_messages(cycle):
                if not msg.is_multicast:
                    self.window[msg.src, msg.dst] += 1
                network.inject(msg)
            if cycle >= self.next_reconfig_at:
                if self.window.sum() < self.min_window_messages:
                    # Not enough evidence to adapt; postpone a full interval.
                    self.next_reconfig_at = cycle + self.interval_cycles
                    return
                self.phase = Phase.DRAIN
                self._drain_started = cycle
        elif self.phase is Phase.DRAIN:
            if network.in_flight == 0:
                self._reconfigure(network, cycle)
            elif (self.drain_deadline_cycles is not None
                    and cycle - self._drain_started
                    >= self.drain_deadline_cycles):
                # A saturated network may never quiesce; retuning is only
                # legal on a drained network, so the epoch is skipped and
                # traffic resumes rather than spinning in DRAIN forever.
                self.drain_timeouts += 1
                self.phase = Phase.MEASURE
                self.next_reconfig_at = cycle + self.interval_cycles
        elif self.phase is Phase.PAUSE:
            if cycle >= self.resume_at:
                self.phase = Phase.MEASURE
                self.next_reconfig_at = cycle + self.interval_cycles
                self.window *= self.decay

    def _reconfigure(self, network: Network, cycle: int) -> None:
        plan = self.controller.reconfigure(self.window)
        network.apply_shortcuts(plan.tables)
        if network.fault_state is not None:
            network.fault_state.rebind(plan.tables)
        self.resume_at = cycle + plan.total_overhead_cycles
        self.phase = Phase.PAUSE
        self.events.append(
            ReconfigurationEvent(
                cycle=cycle,
                drain_cycles=cycle - self._drain_started,
                overhead_cycles=plan.total_overhead_cycles,
                shortcuts=tuple((s.src, s.dst) for s in plan.shortcuts),
            )
        )

    # -- inspection ----------------------------------------------------------

    @property
    def reconfigurations(self) -> int:
        """Number of completed runtime reconfigurations."""
        return len(self.events)

    def total_overhead_cycles(self) -> int:
        """Cycles spent draining and paused across all reconfigurations."""
        return sum(e.drain_cycles + e.overhead_cycles for e in self.events)


class PhasedSource:
    """A workload whose communication pattern changes at phase boundaries.

    Cycles through the given sources, spending ``phase_cycles`` on each —
    the canonical stressor for runtime adaptation (a static per-application
    profile can only fit one of the phases).
    """

    def __init__(self, sources: list, phase_cycles: int):
        if not sources:
            raise ValueError("need at least one source")
        self.sources = list(sources)
        self.phase_cycles = phase_cycles

    def current(self, cycle: int):
        """The source active during ``cycle``'s phase."""
        index = (cycle // self.phase_cycles) % len(self.sources)
        return self.sources[index]

    def sample_messages(self, cycle: int):
        """Delegate to the phase's active source."""
        return self.current(cycle).sample_messages(cycle)

    def tick(self, network: Network) -> None:
        """Inject the active phase's messages into the network."""
        for msg in self.sample_messages(network.cycle):
            network.inject(msg)
