"""The RF-I overlay: binding frequency bands to shortcuts over access points.

Physically (Figure 2a) the overlay is one transmission-line bundle touching
every RF-enabled router; logically it "behaves as a set of N unidirectional
single-cycle shortcuts, each of which may be used simultaneously".  This
module owns that logical view: which routers are access points, how each
point's Tx/Rx mixers are tuned, which band (if any) is the shared multicast
channel, and the translation into :class:`~repro.noc.routing.Shortcut`
edges the routing tables consume.

Invariants enforced (Section 3.2): one inbound and one outbound shortcut per
router at most (each access point has exactly one Tx and one Rx); the number
of allocated bands never exceeds the 256 B aggregate budget (16 channels of
16 B); every shortcut endpoint must be an access point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.noc.routing import Shortcut
from repro.noc.topology import TopologyProvider
from repro.params import RFIParams
from repro.rfi.bands import BandPlan
from repro.rfi.mixers import AccessPoint, TunerRole
from repro.rfi.phy import RFIPhysicalModel
from repro.rfi.waveguide import Waveguide


@dataclass(frozen=True)
class OverlayReport:
    """Provisioning summary of one overlay configuration."""

    num_access_points: int
    num_shortcuts: int
    multicast_enabled: bool
    multicast_receivers: int
    bands_used: int
    bands_available: int
    waveguide_mm: float
    active_area_mm2: float


class RFIOverlay:
    """RF-I bundle + access points + current tuning for one mesh."""

    def __init__(
        self,
        topology: TopologyProvider,
        access_points: list[int],
        rfi_params: Optional[RFIParams] = None,
        adaptive: bool = True,
    ):
        rfi_params = rfi_params if rfi_params is not None else RFIParams()
        self.topology = topology
        self.rfi_params = rfi_params
        self.adaptive = adaptive
        self.band_plan = BandPlan(rfi_params)
        self.band_plan.validate_against_lines()
        self.access_points: dict[int, AccessPoint] = {
            r: AccessPoint(r) for r in access_points
        }
        self.waveguide = Waveguide(topology, list(access_points))
        self.phy = RFIPhysicalModel(rfi_params)
        self.shortcuts: list[Shortcut] = []
        self.multicast_band: int | None = None
        self.multicast_transmitter: int | None = None
        self.multicast_receivers: list[int] = []

    # -- configuration ---------------------------------------------------

    def clear(self) -> None:
        """Disable every mixer (the state between reconfigurations)."""
        for ap in self.access_points.values():
            ap.reset()
        self.shortcuts = []
        self.multicast_band = None
        self.multicast_transmitter = None
        self.multicast_receivers = []

    def configure_shortcuts(self, shortcuts: list[Shortcut]) -> None:
        """Tune Tx/Rx pairs so each shortcut occupies its own band."""
        budget = len(self.band_plan) - (1 if self.multicast_band is not None else 0)
        if len(shortcuts) > budget:
            raise ValueError(
                f"{len(shortcuts)} shortcuts exceed the {budget}-band budget"
            )
        for sc in shortcuts:
            if sc.src not in self.access_points:
                raise ValueError(f"shortcut source {sc.src} is not an access point")
            if sc.dst not in self.access_points:
                raise ValueError(f"shortcut destination {sc.dst} is not an access point")
        sources = [sc.src for sc in shortcuts]
        dests = [sc.dst for sc in shortcuts]
        if len(set(sources)) != len(sources):
            raise ValueError("a router may transmit on at most one shortcut")
        if len(set(dests)) != len(dests):
            raise ValueError("a router may receive on at most one shortcut")
        for sc in shortcuts:
            if self.access_points[sc.src].tx.enabled:
                raise ValueError(f"transmitter at {sc.src} is already tuned")
            rx = self.access_points[sc.dst].rx
            if rx.enabled:
                if rx.role is not TunerRole.MULTICAST:
                    raise ValueError(f"receiver at {sc.dst} is already tuned")
                # A multicast-tuned Rx yields to the shortcut (the paper's
                # MC+SC point: 15 shortcut Rx's, the rest on the MC band).
                rx.disable()
                if sc.dst in self.multicast_receivers:
                    self.multicast_receivers.remove(sc.dst)
        mc_band = self.multicast_band
        free_bands = [b for b in range(len(self.band_plan)) if b != mc_band]
        for band, sc in zip(free_bands, shortcuts):
            self.access_points[sc.src].tx.tune(band, TunerRole.SHORTCUT)
            self.access_points[sc.dst].rx.tune(band, TunerRole.SHORTCUT)
        self.shortcuts = list(shortcuts)

    def configure_multicast(self, transmitter: int) -> list[int]:
        """Dedicate one band to multicast; tune every free Rx to it.

        Returns the receiver set.  The transmitter must be an access point
        (the designated central cache bank of the sending cluster); with K
        shortcuts configured, the remaining N - K access-point receivers
        listen on the multicast channel (Section 3.3).
        """
        if transmitter not in self.access_points:
            raise ValueError(f"multicast transmitter {transmitter} is not an access point")
        used = len(self.shortcuts)
        if used >= len(self.band_plan):
            raise ValueError("no free band left for multicast")
        band = len(self.band_plan) - 1
        if any(
            ap.tx.band == band or ap.rx.band == band
            for ap in self.access_points.values()
        ):
            # configure_shortcuts assigned the last band; re-tune from scratch.
            raise ValueError(
                "configure_multicast must run before configure_shortcuts "
                "fills every band"
            )
        self.multicast_band = band
        self.multicast_transmitter = transmitter
        tx = self.access_points[transmitter].tx
        if tx.enabled:
            raise ValueError(f"transmitter at {transmitter} already carries a shortcut")
        tx.tune(band, TunerRole.MULTICAST)
        self.multicast_receivers = []
        for router, ap in sorted(self.access_points.items()):
            if not ap.rx.enabled:
                ap.rx.tune(band, TunerRole.MULTICAST)
                self.multicast_receivers.append(router)
        return list(self.multicast_receivers)

    # -- queries --------------------------------------------------------------

    def routing_shortcuts(self) -> list[Shortcut]:
        """The shortcut edges to overlay on the routing graph."""
        return list(self.shortcuts)

    def bands_used(self) -> int:
        """Bands currently allocated (shortcuts + multicast channel)."""
        return len(self.shortcuts) + (1 if self.multicast_band is not None else 0)

    def active_area_mm2(self) -> float:
        """Active-silicon RF-I area (Table 2's 'RF-I Area' column)."""
        if self.adaptive:
            return self.phy.adaptive_area_mm2(len(self.access_points))
        return self.phy.static_area_mm2(len(self.shortcuts))

    def report(self) -> OverlayReport:
        """Provisioning summary as an :class:`OverlayReport`."""
        return OverlayReport(
            num_access_points=len(self.access_points),
            num_shortcuts=len(self.shortcuts),
            multicast_enabled=self.multicast_band is not None,
            multicast_receivers=len(self.multicast_receivers),
            bands_used=self.bands_used(),
            bands_available=len(self.band_plan),
            waveguide_mm=self.waveguide.length_mm(),
            active_area_mm2=self.active_area_mm2(),
        )

    @classmethod
    def for_static_shortcuts(
        cls,
        topology: TopologyProvider,
        shortcuts: list[Shortcut],
        rfi_params: Optional[RFIParams] = None,
    ) -> "RFIOverlay":
        """Overlay whose access points are exactly the shortcut endpoints.

        This is the design-time configuration of Figure 2(b): the RF-enabled
        set is whatever the architecture-specific selection chose, and each
        endpoint is a fixed single-band circuit.
        """
        endpoints = sorted(
            {sc.src for sc in shortcuts} | {sc.dst for sc in shortcuts}
        )
        overlay = cls(topology, endpoints, rfi_params, adaptive=False)
        overlay.configure_shortcuts(shortcuts)
        return overlay
