"""Architecture and technology parameters for the RF-I NoC reproduction.

Every number that appears in the paper's "Network Simulation Parameters"
table (Fig 5a), its RF-I technology description (Section 2), or its power
model (Fig 6a) lives here, in one frozen dataclass per concern.  All other
modules import these instead of hard-coding constants, so a single edit
re-parameterizes the whole system (e.g. a smaller mesh for tests).

Sources
-------
* Mesh geometry, clocks, message sizes: Fig 5a of the follow-on text and
  Section 3.1 (identical baseline to the HPCA-2008 paper).
* RF-I physical constants: Section 2 / Section 4.3 (96 Gbps per line,
  0.75 pJ/bit, 124 um^2/Gbps, 0.3 ns across a 400 mm^2 die).
* 32 nm electrical parameters: Fig 6a as cited; values here follow ITRS-era
  32 nm projections and are calibration points, not measurements.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass


@dataclass(frozen=True)
class TopologyParams:
    """Geometry, clocking, and substrate of the CMP floorplan (Section 3.1).

    ``width`` x ``height`` is the *logical* component grid (100 tiles in the
    paper's baseline); ``provider`` names the registered topology provider
    (:mod:`repro.noc.topology`) that realizes it as a router graph.  The
    default ``"mesh"`` provider places one router per tile; the
    ``"cmesh"`` provider collapses ``concentration`` x ``concentration``
    tiles onto each router; ``"torus"`` adds wraparound links.  Providers
    other than the mesh may therefore expose fewer routers than
    :attr:`num_routers` — simulation code must ask the *provider* for its
    router-grid geometry, not these params.
    """

    width: int = 10
    height: int = 10
    num_cores: int = 64
    num_caches: int = 32
    num_memports: int = 4
    link_bytes: int = 16          # inter-router link width (16B baseline; 8B/4B variants)
    network_ghz: float = 2.0      # NoC clock
    core_ghz: float = 4.0         # core / cache clock
    die_area_mm2: float = 400.0   # 20 mm x 20 mm die
    cache_clusters: int = 4       # one cluster of 8 banks per quadrant
    #: Registered topology provider realizing this floorplan ("mesh" /
    #: "cmesh" / "torus" / any :func:`repro.noc.topology.register` name).
    #: Stripped from job digests when it equals the default, so every
    #: pre-provider store address stays valid.
    provider: str = "mesh"
    #: Concentration factor for concentrated providers: each router hosts a
    #: ``concentration x concentration`` tile of components.  Ignored (and
    #: digest-stripped) under the plain mesh provider.
    concentration: int = 2

    @property
    def num_routers(self) -> int:
        """Logical grid tiles (width x height).

        Equals the router count only under one-router-per-tile providers;
        concentrated providers expose their own smaller ``num_routers``.
        """
        return self.width * self.height

    @property
    def router_spacing_mm(self) -> float:
        """Distance between adjacent logical tiles (die edge / grid width)."""
        edge_mm = self.die_area_mm2 ** 0.5
        return edge_mm / self.width

    def scaled(self, **overrides) -> "TopologyParams":
        """Return a copy with selected fields replaced (for small test meshes)."""
        return dataclasses.replace(self, **overrides)


#: Backward-compatible name: the mesh was the only substrate before the
#: provider layer existed, and every persisted digest/blob keys on the
#: ``mesh`` field name.
MeshParams = TopologyParams


@dataclass(frozen=True)
class RouterParams:
    """Microarchitecture of a mesh router (Section 3.1).

    The paper's 5-cycle pipeline is route-computation (RC), virtual-channel
    allocation (VA), switch allocation (SA), switch traversal (ST) and link
    traversal (LT).  Only head flits pay RC and VA; body/tail flits inherit
    the head's route and VC and pay 3 cycles (SA, ST, LT).
    """

    num_vcs: int = 4              # message virtual channels per input port
    num_escape_vcs: int = 2       # reserved deadlock-escape VCs (mesh links only)
    vc_buffer_flits: int = 4      # buffer depth per VC
    pipeline_head_cycles: int = 5
    pipeline_body_cycles: int = 3

    @property
    def total_vcs(self) -> int:
        """Message VCs plus escape VCs per input port."""
        return self.num_vcs + self.num_escape_vcs


@dataclass(frozen=True)
class MessageParams:
    """Network message sizes in bytes (Section 4.1).

    Requests travel core->cache (or core->core), data messages carry a cache
    block payload, and memory messages move whole blocks between cache banks
    and the memory controllers.
    """

    request_bytes: int = 7
    data_bytes: int = 39
    memory_bytes: int = 132
    dbv_bits: int = 64            # multicast destination-bit-vector width


@dataclass(frozen=True)
class RFIParams:
    """RF-I transmission-line bundle and shortcut budget (Sections 2, 3.2).

    The aggregate RF-I bandwidth is fixed at 256 B per network cycle
    (4096 Gbps at 2 GHz), carried by 43 parallel transmission lines of
    96 Gbps each.  The paper then allocates this as 16 unidirectional 16 B
    shortcuts (budget B = 16).
    """

    aggregate_bytes_per_cycle: int = 256
    line_gbps: float = 96.0
    shortcut_bytes: int = 16
    energy_pj_per_bit: float = 0.75
    area_um2_per_gbps: float = 124.0
    cross_chip_latency_cycles: int = 1   # 0.3 ns over 400 mm^2 < one 2 GHz cycle
    max_inbound_per_router: int = 1      # 6-port router limit
    max_outbound_per_router: int = 1

    @property
    def num_lines(self) -> int:
        """Transmission lines needed for the aggregate bandwidth (43 in the paper)."""
        gbps = self.aggregate_bytes_per_cycle * 8 * 2.0  # 2 GHz network clock
        return -(-int(gbps) // int(self.line_gbps))      # ceil

    @property
    def shortcut_budget(self) -> int:
        """Number of 16 B unidirectional shortcuts the aggregate bandwidth funds."""
        return self.aggregate_bytes_per_cycle // self.shortcut_bytes


@dataclass(frozen=True)
class TechnologyParams:
    """32 nm electrical parameters used by the power model (Fig 6a).

    Symbols follow the paper: ``vdd`` supply voltage, ``c0`` input capacitance
    of a minimum-size repeater, ``cp`` its output parasitic capacitance,
    ``cwire`` wire capacitance per unit length, ``r0`` minimum repeater output
    resistance, ``rwire`` wire resistance per unit length, ``ioff``
    subthreshold leakage of a minimum device, and ``wmin`` minimum repeater
    width.  Values are ITRS-class 32 nm projections.
    """

    node_nm: int = 32
    vdd: float = 0.9                      # V
    c0_ff: float = 0.6                    # fF, min repeater input cap
    cp_ff: float = 0.3                    # fF, min repeater parasitic cap
    cwire_ff_per_mm: float = 200.0        # fF/mm
    r0_kohm: float = 6.0                  # kOhm, min repeater resistance
    rwire_ohm_per_mm: float = 1200.0      # Ohm/mm
    ioff_na_per_um: float = 100.0         # nA/um leakage per device width
    wmin_um: float = 0.05                 # um, minimum repeater width
    network_ghz: float = 2.0


@dataclass(frozen=True)
class SimulationParams:
    """Run lengths and measurement windows.

    The paper runs probabilistic traces for one million network cycles and
    application traces for up to 500 million.  Average latency and power are
    steady-state intensive metrics, so this pure-Python reproduction defaults
    to much shorter warmed-up windows; both are configurable.
    """

    warmup_cycles: int = 1_000
    measure_cycles: int = 10_000
    drain_cycles: int = 20_000   # extra cycles allowed for in-flight packets
    seed: int = 2008
    #: Cycle-level event tracing (repro.obs): off by default — when on, the
    #: simulator attaches an Observation and fills its bounded ring buffer.
    trace_events: bool = False
    trace_buffer_events: int = 65_536
    #: Cycle-kernel request (``"fast"`` / ``"reference"``); ``None`` keeps
    #: whatever kernel the network was built with.  Purely an execution
    #: strategy — both kernels are bit-identical — so this field is
    #: excluded from result/job digests (a kernel choice must never fork
    #: the result cache).
    kernel: "str | None" = None


@dataclass(frozen=True)
class ArchitectureParams:
    """Bundle of all parameter groups describing one NoC design point.

    The ``mesh`` field holds the :class:`TopologyParams` (the name predates
    the provider layer and is kept because persisted job digests key on it);
    :attr:`topology` is the readable alias.
    """

    mesh: TopologyParams = TopologyParams()
    router: RouterParams = RouterParams()
    message: MessageParams = MessageParams()
    rfi: RFIParams = RFIParams()
    technology: TechnologyParams = TechnologyParams()
    simulation: SimulationParams = SimulationParams()

    @property
    def topology(self) -> TopologyParams:
        """The substrate parameters (alias of the legacy ``mesh`` field)."""
        return self.mesh

    def with_link_bytes(self, link_bytes: int) -> "ArchitectureParams":
        """A copy of this design with a different mesh link width (16/8/4 B)."""
        return dataclasses.replace(self, mesh=self.mesh.scaled(link_bytes=link_bytes))

    def with_topology(
        self, provider: "str | None" = None, **overrides
    ) -> "ArchitectureParams":
        """A copy with topology fields replaced.

        ``provider`` selects a registered topology provider (e.g.
        ``"torus"``, ``"cmesh"``); keyword overrides replace any other
        :class:`TopologyParams` field (``with_topology(width=4, height=4)``
        builds the small test meshes).
        """
        if provider is not None:
            overrides["provider"] = provider
        return dataclasses.replace(self, mesh=self.mesh.scaled(**overrides))

    def with_mesh(self, **mesh_overrides) -> "ArchitectureParams":
        """Deprecated alias of :meth:`with_topology` (pre-1.0; removed in v2.0)."""
        warnings.warn(
            "ArchitectureParams.with_mesh is deprecated and will be removed "
            "in v2.0; use with_topology(**overrides) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.with_topology(**mesh_overrides)


DEFAULT_PARAMS = ArchitectureParams()
