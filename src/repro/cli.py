"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``params``      print the network-simulation parameter table (Fig 5a)
``floorplan``   render the CMP floorplan with RF access points (Fig 2a)
``list``        list the reproducible experiments
``workloads``   characterize every workload (locality, hotspots)
``run``         run one experiment (or ``all``) and print its table
``simulate``    one-off simulation of a (design, workload) cell
``sweep``       parallel (styles x widths x workloads) grid through the
                execution engine, with the persistent result cache
``serve``       host the asyncio simulation service (``repro.serve``)
``request``     client: query a running service (simulate/sweep/health/
                metrics/trace/job; see ``docs/serving.md``)
``campaign``    declarative, resumable scenario campaigns: ``run`` a
                spec (file or named campaign) in checkpointed chunks,
                ``status`` a manifest, ``report`` Pareto frontiers and
                trends (see ``docs/campaigns.md``)
``kernels``     list the registered cycle-execution kernels and their
                capability flags (the ``--kernel`` vocabulary)
``topologies``  list the registered substrate topology providers and
                their capability flags (the ``--topology`` vocabulary)

The executing verbs (``run``/``simulate``/``sweep``) share one flag
vocabulary: ``--jobs``, ``--seed``, ``--out``, ``--fast``, and
``--trace-events`` mean the same thing everywhere, and every subcommand
takes ``--json`` to emit machine-readable output on stdout instead of
text.  ``simulate --trace-events FILE`` writes the run's cycle-level
events as JSONL; ``sweep --trace-events DIR`` writes one JSONL per
simulated cell (tracing forces fresh, uncached runs); both take
``--faults SPEC`` to inject a fault schedule (see ``docs/faults.md``).
The pre-1.0 flag spellings (``simulate --trace``, ``sweep --traces``)
keep working as hidden aliases, but emit a ``DeprecationWarning`` and
will be removed in v2.0 — use ``--workload``/``--workloads``.

Exit codes are uniform: 0 success, 2 bad input (unknown experiment,
malformed grid, invalid request), 1 anything else.  Under ``--json``
every payload carries a ``version`` field and bad input additionally
emits one single-line JSON error object on stderr, so scripted callers
can always parse what they got.  ``repro --version`` prints the package
version.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import warnings
from pathlib import Path

from repro.experiments import (
    DEFAULT_CONFIG, FAST_CONFIG, ExperimentRunner, e1_load_latency,
    e2_adaptive_routing, e3_static_shortcut_gains, e4_heuristic_ablation,
    fig1_traffic_locality, fig2_topologies, fig7_rf_router_count,
    fig8_bandwidth_reduction, fig9_multicast, fig10_unified,
    o1_closed_loop_vs_static, o2_reconfiguration_under_faults,
    r1_shortcut_degradation, r2_transient_outage, table2_area,
)
from repro.params import DEFAULT_PARAMS
from repro.serve.protocol import DESIGN_STYLES, known_workloads
from repro.version import package_version

EXPERIMENTS = {
    "E1": (e1_load_latency, "load-latency: baseline vs static shortcuts"),
    "E2": (e2_adaptive_routing, "adaptive routing under shortcut contention"),
    "E3": (e3_static_shortcut_gains, "static shortcut latency reduction"),
    "E4": (e4_heuristic_ablation, "Fig 3a vs 3b selection heuristics"),
    "F1": (fig1_traffic_locality, "traffic by Manhattan distance (Fig 1)"),
    "F2": (fig2_topologies, "overlay topologies (Fig 2)"),
    "F7": (fig7_rf_router_count, "RF-enabled router count (Fig 7)"),
    "F8": (fig8_bandwidth_reduction, "mesh bandwidth reduction (Fig 8)"),
    "F9": (fig9_multicast, "multicast comparison (Fig 9)"),
    "F10": (fig10_unified, "unified power/performance (Fig 10)"),
    "O1": (o1_closed_loop_vs_static,
           "online control: closed loop vs best static placement"),
    "O2": (o2_reconfiguration_under_faults,
           "online control: reconfiguration under active band faults"),
    "R1": (r1_shortcut_degradation, "resilience: latency/power vs dead bands"),
    "R2": (r2_transient_outage, "resilience: transient mid-run outage"),
    "T2": (table2_area, "NoC area (Table 2)"),
}

class CLIError(Exception):
    """Bad user input: exit 2, single-line JSON on stderr under --json."""


def _print_json(payload) -> None:
    """Emit a ``--json`` payload, always carrying a ``version`` field.

    Dict payloads gain the field in place; list payloads are wrapped as
    ``{"version": ..., "items": [...]}`` (a bare array can't carry it).
    """
    if isinstance(payload, dict):
        payload.setdefault("version", package_version())
    else:
        payload = {"version": package_version(), "items": payload}
    print(json.dumps(payload, indent=2, sort_keys=True))


def _config_for(args):
    """The experiment config implied by ``--fast``/``--seed``/``--kernel``."""
    config = FAST_CONFIG if getattr(args, "fast", False) else DEFAULT_CONFIG
    seed = getattr(args, "seed", None)
    if seed is not None:
        config = dataclasses.replace(config, traffic_seed=seed)
    kernel = getattr(args, "kernel", None)
    if kernel is not None:
        config = dataclasses.replace(
            config, sim=dataclasses.replace(config.sim, kernel=kernel)
        )
    return config


def render_parameters() -> str:
    """The Fig 5a 'Network Simulation Parameters' table."""
    rows = parameter_rows()
    width = max(len(name) for name, _ in rows)
    lines = ["Network Simulation Parameters (Fig 5a)",
             "=" * 40]
    lines += [f"{name:<{width}}  {value}" for name, value in rows]
    return "\n".join(lines)


def parameter_rows() -> list[tuple[str, str]]:
    """The Fig 5a table as (name, value) rows."""
    p = DEFAULT_PARAMS
    return [
        ("Topology", f"{p.mesh.width}x{p.mesh.height} {p.mesh.provider}"),
        ("Components", f"{p.mesh.num_cores} cores, {p.mesh.num_caches} "
                       f"cache banks, {p.mesh.num_memports} memory ports"),
        ("Clocks", f"network {p.mesh.network_ghz:.0f} GHz, "
                   f"cores/caches {p.mesh.core_ghz:.0f} GHz"),
        ("Die", f"{p.mesh.die_area_mm2:.0f} mm^2 "
                f"({p.mesh.router_spacing_mm:.1f} mm router spacing)"),
        ("Link width", f"{p.mesh.link_bytes} B/cycle (8 B and 4 B variants)"),
        ("Switching", "wormhole, credit-based flow control"),
        ("Router pipeline", f"{p.router.pipeline_head_cycles}-cycle head "
                            f"(RC/VA/SA/ST/LT), "
                            f"{p.router.pipeline_body_cycles}-cycle body"),
        ("Virtual channels", f"{p.router.num_vcs} + "
                             f"{p.router.num_escape_vcs} escape per input, "
                             f"{p.router.vc_buffer_flits}-flit buffers"),
        ("Messages", f"request {p.message.request_bytes} B, data "
                     f"{p.message.data_bytes} B, memory "
                     f"{p.message.memory_bytes} B"),
        ("RF-I", f"{p.rfi.num_lines} lines x {p.rfi.line_gbps:.0f} Gbps = "
                 f"{p.rfi.aggregate_bytes_per_cycle} B/cycle, "
                 f"{p.rfi.shortcut_budget} x {p.rfi.shortcut_bytes} B bands"),
        ("RF-I physics", f"{p.rfi.energy_pj_per_bit} pJ/bit, "
                         f"{p.rfi.area_um2_per_gbps} um^2/Gbps, "
                         f"single-cycle cross-chip"),
        ("Deadlock", "escape VC class, XY on mesh links only"),
    ]


def cmd_params(args) -> int:
    """Print the Fig 5a parameter table."""
    if args.json:
        _print_json({name: value for name, value in parameter_rows()})
    else:
        print(render_parameters())
    return 0


def cmd_floorplan(args) -> int:
    """Render the CMP floorplan with RF access points."""
    runner = ExperimentRunner(FAST_CONFIG)
    topo = runner.topology
    rf = sorted(topo.rf_enabled_routers(args.access_points))
    if args.json:
        _print_json({
            "access_points": rf,
            "width": topo.width,
            "height": topo.height,
        })
        return 0
    print(f"C=core  $=cache  M=memory  *=RF access point ({len(rf)})")
    print(topo.render(set(rf)))
    return 0


def cmd_list(args) -> int:
    """List the reproducible experiments."""
    if args.json:
        _print_json({key: desc for key, (_fn, desc) in EXPERIMENTS.items()})
        return 0
    for key, (_fn, description) in EXPERIMENTS.items():
        print(f"{key:<4} {description}")
    return 0


def cmd_workloads(args) -> int:
    """Characterize every workload (Table 1 + the Fig 5b substitution)."""
    from repro.traffic import (
        APPLICATIONS, PATTERN_NAMES, ProbabilisticTraffic, detect_hotspots,
        locality_index,
    )

    runner = ExperimentRunner(FAST_CONFIG)
    topo = runner.topology
    seed = 4 if args.seed is None else args.seed
    rows = []
    for name in PATTERN_NAMES + tuple(APPLICATIONS):
        source = ProbabilisticTraffic(
            topo, runner.pattern(name), runner.rate(name), seed=seed
        )
        profile = source.collect_profile(args.cycles)
        rows.append({
            "workload": name,
            "rate": runner.rate(name),
            "locality": locality_index(profile, topo),
            "hotspots": len(detect_hotspots(profile)),
        })
    if args.json:
        _print_json(rows)
        return 0
    print(f"{'workload':<15} {'rate':>6} {'locality':>9} {'hotspots':>9}")
    for row in rows:
        print(f"{row['workload']:<15} {row['rate']:>6.3f} "
              f"{row['locality']:>9.2f} {row['hotspots']:>9}")
    return 0


def _kernel_names() -> list[str]:
    """Registered kernel names, default first (the ``--kernel`` choices)."""
    from repro.noc.kernel import list_kernels

    return [row["name"] for row in list_kernels()]


def cmd_kernels(args) -> int:
    """List the registered cycle-execution kernels and their capabilities."""
    from repro.noc.kernel import list_kernels

    rows = list_kernels()
    if args.json:
        _print_json(rows)
        return 0
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        marker = "*" if row["default"] else " "
        caps = ",".join(row["capabilities"])
        print(f"{marker} {row['name']:<{width}}  [{caps}]  {row['summary']}")
    print("(* = default; see docs/performance.md for the contract)")
    return 0


def _topology_names() -> list[str]:
    """Registered provider names, default first (the ``--topology`` choices)."""
    from repro.noc.topology import list_topologies

    return [row["name"] for row in list_topologies()]


def cmd_topologies(args) -> int:
    """List the registered topology providers and their capabilities."""
    from repro.noc.topology import list_topologies

    rows = list_topologies()
    if args.json:
        _print_json(rows)
        return 0
    width = max(len(row["name"]) for row in rows)
    for row in rows:
        marker = "*" if row["default"] else " "
        caps = ",".join(row["capabilities"])
        print(f"{marker} {row['name']:<{width}}  [{caps}]  {row['summary']}")
    print("(* = default; see docs/topologies.md for the provider contract)")
    return 0


def _warn_trace_ignored(args) -> None:
    if getattr(args, "trace_events", None):
        print("note: --trace-events records cycle-level events for "
              "'simulate' and 'sweep'; 'run' executes many cells and "
              "ignores it", file=sys.stderr)


def cmd_run(args) -> int:
    """Run one experiment (or 'all') and print/write its table."""
    from repro.experiments.export import jsonable

    _warn_trace_ignored(args)
    runner = ExperimentRunner(_config_for(args))
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    out_dir = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)
    collected = {}
    for name in names:
        key = name.upper()
        if key not in EXPERIMENTS:
            raise CLIError(f"unknown experiment {name!r}; see 'list'")
        fn, _ = EXPERIMENTS[key]
        result = fn(runner)
        text = result.render()
        if args.json:
            collected[key] = jsonable(result)
        else:
            print(text)
            print()
        if out_dir:
            (out_dir / f"{key.lower()}.txt").write_text(text + "\n")
    if args.json:
        _print_json(collected)
    return 0


def _check_workload(workload: str, online: bool) -> None:
    """Known workload name, or (online only) a phased composite."""
    if workload in known_workloads():
        return
    from repro.control.run import PHASED_PREFIX, parse_phased_workload

    if online and workload.startswith(PHASED_PREFIX):
        try:
            phases, _ = parse_phased_workload(workload)
        except ValueError as exc:
            raise CLIError(str(exc)) from None
        unknown = [p for p in phases if p not in known_workloads()]
        if unknown:
            raise CLIError(f"unknown workloads {unknown} in {workload!r}; "
                           "see 'workloads'")
        return
    if workload.startswith(PHASED_PREFIX):
        raise CLIError(f"phased workload {workload!r} needs --online "
                       "(a closed-loop run)")
    raise CLIError(f"unknown workload {workload!r}; see 'workloads'")


def cmd_simulate(args) -> int:
    """Simulate one (design, workload) cell and print its metrics."""
    from repro.api import simulate

    online = getattr(args, "online", None)
    _check_workload(args.workload, online is not None)
    result = simulate(
        args.design, args.workload, width=args.width, fast=args.fast,
        kernel=getattr(args, "kernel", None),
        topology=getattr(args, "topology", None),
        seed=args.seed, faults=args.faults or None,
        trace_events=args.trace_events or None,
        online=online,
    )
    summary = result.summary()
    summary["provenance"] = result.provenance
    if online is not None:
        from repro.control.loop import ControlConfig

        summary["online"] = ControlConfig.from_spec(online or "").canonical()
    if args.faults:
        summary["faults"] = args.faults
    if getattr(args, "topology", None):
        summary["topology"] = args.topology
    if args.trace_events:
        summary["trace_events"] = str(args.trace_events)
    if args.out:
        from repro.experiments.export import save_json

        save_json(result.to_dict(), args.out)
    if args.json:
        _print_json(summary)
        return 0
    print(f"design    : {result.design}")
    print(f"workload  : {result.workload}")
    print(f"latency   : {result.avg_latency:.2f} cycles/packet "
          f"({result.avg_flit_latency:.2f} /flit)")
    print(f"power     : {result.total_power_w:.2f} W")
    print(f"area      : {result.total_area_mm2:.2f} mm^2")
    print(f"delivered : {result.stats.delivered_packets} packets "
          f"({result.stats.delivery_ratio:.3f} of injected)")
    if args.faults:
        stats = result.stats
        print(f"faults    : {args.faults} (drops={stats.fault_drops} "
              f"retries={stats.fault_retries} "
              f"reroutes={stats.fault_reroutes})")
    if args.trace_events:
        print(f"trace     : {args.trace_events}")
    if args.heatmap:
        from repro.noc.topology import build_topology
        from repro.noc.visualize import render_traffic_heatmap

        print()
        print(render_traffic_heatmap(
            result.stats,
            build_topology(DEFAULT_PARAMS.mesh,
                           provider=getattr(args, "topology", None)),
        ))
    return 0


def cmd_sweep(args) -> int:
    """Run a (styles x widths x workloads) grid through the parallel engine."""
    from repro.exec import ResultStore, run_sweep, sweep_grid
    from repro.experiments.export import jsonable, save_json

    config = _config_for(args)
    online = getattr(args, "online", None)
    styles = _split_list(args.styles, "styles")
    widths = [_parse_width(w) for w in _split_list(args.widths, "widths")]
    workloads = _split_list(args.workloads, "workloads")
    for style in styles:
        if style not in DESIGN_STYLES:
            raise CLIError(f"unknown design style {style!r}; "
                           f"one of {','.join(DESIGN_STYLES)}")
    for workload in workloads:
        _check_workload(workload, online is not None)
    try:
        specs = sweep_grid(styles, widths, workloads,
                           adaptive_routing=args.adaptive_routing,
                           faults=args.faults or None,
                           topology=getattr(args, "topology", None),
                           control=online)
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    trace_dir = Path(args.trace_events) if args.trace_events else None
    # Tracing forces fresh runs, so the persistent cache is bypassed.
    store = (None if args.no_cache or trace_dir
             else ResultStore(args.cache))

    def progress(event: dict) -> None:
        label = {"hit": "cache", "done": "ran", "retry": "retry"}[
            event["event"]
        ]
        wall = f" ({event['wall_s']:.1f}s)" if "wall_s" in event else ""
        print(f"[{event['index'] + 1}/{len(specs)}] {label:<5} "
              f"{event['job']}{wall}", file=sys.stderr)

    report = run_sweep(specs, config=config, store=store, jobs=args.jobs,
                       progress=progress, trace_dir=trace_dir,
                       batch=args.batch)
    summary = report.summary()
    payload = {
        "summary": summary,
        "jobs": [
            {
                "spec": jsonable(outcome.spec),
                "digest": outcome.digest,
                "cached": outcome.cached,
                "wall_s": outcome.wall_s,
                "attempts": outcome.attempts,
                "profile": outcome.profile,
                "result": {
                    "design": outcome.result.design,
                    "workload": outcome.result.workload,
                    "avg_latency": outcome.result.avg_latency,
                    "avg_flit_latency": outcome.result.avg_flit_latency,
                    "power_w": outcome.result.total_power_w,
                    "area_mm2": outcome.result.total_area_mm2,
                    "provenance": outcome.result.provenance,
                },
            }
            for outcome in report.outcomes
        ],
    }
    if args.json:
        _print_json(payload)
    else:
        header = (f"{'design':<22} {'workload':<12} {'latency':>8} "
                  f"{'power W':>8} {'source':>7} {'wall s':>7}")
        print(header)
        print("-" * len(header))
        for outcome in report.outcomes:
            result = outcome.result
            print(f"{result.design:<22} {result.workload:<12} "
                  f"{result.avg_latency:>8.2f} {result.total_power_w:>8.2f} "
                  f"{'cache' if outcome.cached else 'sim':>7} "
                  f"{outcome.wall_s:>7.2f}")
        print()
        print(f"{summary['jobs']} jobs in {summary['wall_s']:.1f}s with "
              f"{args.jobs} worker(s): {summary['cache_hits']} cache hits, "
              f"{summary['cache_misses']} simulated "
              f"({summary['cycles_per_sec']:.0f} sim cycles/s)")
    if args.out:
        path = save_json(payload, args.out)
        print(f"wrote {path}", file=sys.stderr if args.json else sys.stdout)
    return 0


def cmd_control(args) -> int:
    """One closed-loop run: metrics + decision journal (+ static bar)."""
    from repro.control.run import run_closed_loop
    from repro.exec import ResultStore
    from repro.experiments.export import jsonable

    _check_workload(args.workload, True)
    store = None if args.no_cache else ResultStore(args.cache)
    runner = ExperimentRunner(_config_for(args), store=store)
    try:
        run = run_closed_loop(
            runner, args.workload, style=args.design, width=args.width,
            seed=args.seed, access_points=args.access_points,
            control=args.control or "", faults=args.faults or None,
            topology=getattr(args, "topology", None),
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from None
    result = run.result
    summary = run.summary()
    payload = {
        "design": result.design,
        "workload": args.workload,
        "control": run.control.canonical(),
        "digest": run.digest,
        "avg_latency": result.avg_latency,
        "avg_flit_latency": result.avg_flit_latency,
        "power_w": result.total_power_w,
        "journal": summary,
        "decisions": run.journal.to_dicts(),
    }
    static = None
    if args.compare_static:
        from repro.control.run import best_static_latencies

        static = best_static_latencies(
            runner, args.workload, width=args.width, seed=args.seed,
            access_points=args.access_points,
            topology=getattr(args, "topology", None),
        )
        best = min(static, key=static.get)
        payload["static"] = static
        payload["best_static"] = {"placement": best,
                                  "avg_latency": static[best]}
        payload["closed_loop_wins"] = result.avg_latency < static[best]
    if args.journal:
        path = run.journal.write_jsonl(args.journal)
        payload["journal_path"] = str(path)
    if args.json:
        _print_json(jsonable(payload))
        return 0
    print(f"design    : {result.design}")
    print(f"workload  : {args.workload}")
    print(f"control   : {run.control.canonical()}")
    print(f"latency   : {result.avg_latency:.2f} cycles/packet "
          f"({result.avg_flit_latency:.2f} /flit)")
    print(f"power     : {result.total_power_w:.2f} W")
    print(f"decisions : {summary['applied']} applied, "
          f"{summary['skipped']} skipped "
          f"({summary['overhead_cycles']} overhead cycles)")
    print(f"journal   : {summary['journal_digest'][:16]} "
          f"({summary['records']} records)")
    if static is not None:
        best = payload["best_static"]
        verdict = "wins" if payload["closed_loop_wins"] else "loses"
        print(f"static    : best {best['placement']} at "
              f"{best['avg_latency']:.2f} cycles/packet "
              f"-> closed loop {verdict}")
    if args.journal:
        print(f"wrote     : {payload['journal_path']}")
    return 0


def _split_list(text: str, name: str) -> list[str]:
    values = [item for item in text.split(",") if item]
    if not values:
        raise CLIError(f"--{name} must name at least one value")
    return values


def _parse_width(text: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise CLIError(f"invalid link width {text!r}: widths are "
                       "comma-separated integers (bytes)") from None


def _serve_cluster(args) -> int:
    """The ``repro serve --workers N`` path: supervisor + router."""
    import signal as _signal
    import time as _time

    from repro.cluster import Cluster

    if args.no_cache:
        raise CLIError("--workers needs the result store: the shared "
                       "read-through tier under --cache is what lets "
                       "shards serve each other's warm results")
    extra = []
    if args.seed is not None:
        extra += ["--seed", str(args.seed)]
    if getattr(args, "kernel", None):
        extra += ["--kernel", args.kernel]
    if getattr(args, "topology", None):
        extra += ["--topology", args.topology]
    cluster = Cluster(
        workers=args.workers,
        config=_config_for(args),
        fast=getattr(args, "fast", False),
        processes=True,
        host=args.host,
        router_port=args.port,
        cache_root=args.cache,
        queue_limit=args.queue_limit,
        concurrency=max(args.jobs, 1),
        extra_worker_args=extra,
    )
    port = cluster.start()
    ports = ", ".join(str(w.port) for w in cluster.workers)
    print(f"repro.cluster router on http://{args.host}:{port} "
          f"({args.workers} workers on ports {ports}; "
          f"caches under {args.cache})")
    # SIGTERM (systemd stop, docker stop, plain `kill`) must tear the
    # worker subprocesses down too, not just the router process.
    def _terminated(signum, frame):
        raise KeyboardInterrupt

    previous = _signal.signal(_signal.SIGTERM, _terminated)
    try:
        while True:
            _time.sleep(1)
    except KeyboardInterrupt:
        pass
    finally:
        _signal.signal(_signal.SIGTERM, previous)
        cluster.stop()
    return 0


def cmd_serve(args) -> int:
    """Host the asyncio simulation service (blocking; Ctrl-C to stop)."""
    from repro.exec import ResultStore
    from repro.serve.http import run as serve_run
    from repro.serve.service import SimulationService

    if args.workers < 1:
        raise CLIError("--workers must be at least 1")
    if args.workers > 1:
        return _serve_cluster(args)
    store = (None if args.no_cache
             else ResultStore(args.cache, shared=args.shared_cache))
    params = DEFAULT_PARAMS
    if getattr(args, "topology", None):
        # The service-wide default substrate; per-request "topology"
        # fields still override it cell by cell.
        params = params.with_topology(provider=args.topology)
    service = SimulationService(
        config=_config_for(args),
        params=params,
        store=store,
        queue_limit=args.queue_limit,
        concurrency=args.jobs,
        max_timeout_s=args.timeout,
        shard_id=args.shard_id,
    )
    serve_run(service, host=args.host, port=args.port)
    return 0


def cmd_request(args) -> int:
    """Query a running service; prints the response envelope."""
    from repro.serve.client import ServeClient, ServeClientError

    client = ServeClient(args.host, args.port, timeout=args.timeout)
    try:
        if args.what == "health":
            response = client.health()
        elif args.what == "cluster":
            response = client.cluster()
        elif args.what == "metrics":
            response = client.metrics()
        elif args.what == "trace":
            response = client.trace()
        elif args.what == "job":
            if not args.id:
                raise CLIError("'request job' needs --id JOB_ID")
            for event in client.job_events(args.id):
                print(json.dumps(event, sort_keys=True))
            return 0
        elif args.what == "sweep":
            fields = {
                "styles": _split_list(args.styles, "styles"),
                "widths": [_parse_width(w)
                           for w in _split_list(args.widths, "widths")],
                "workloads": _split_list(args.workloads, "workloads"),
            }
            if args.faults:
                fields["faults"] = args.faults
            if args.topology:
                fields["topology"] = args.topology
            response = client.sweep(**fields)
            if response.status == 202 and args.follow:
                for event in client.job_events(
                    response.payload["job_id"]
                ):
                    print(json.dumps(event, sort_keys=True))
                return 0
        else:   # simulate
            fields = {"design": args.design, "workload": args.workload,
                      "width": args.width}
            if args.seed is not None:
                fields["seed"] = args.seed
            if args.faults:
                fields["faults"] = args.faults
            if args.topology:
                fields["topology"] = args.topology
            if args.timeout_s is not None:
                fields["timeout_s"] = args.timeout_s
            response = client.simulate(**fields)
    except ServeClientError as exc:
        raise CLIError(str(exc)) from exc
    if response.status == 400:
        raise CLIError(response.payload.get("error", "bad request"))
    if args.json or args.what in ("metrics", "trace", "health", "cluster"):
        _print_json(response.payload)
    elif response.ok:
        payload = response.payload
        if "result" in payload:
            result = payload["result"]
            print(f"source    : {payload['source']}")
            if "shard" in payload:
                print(f"shard     : {payload['shard']}")
            print(f"design    : {result['design']}")
            print(f"workload  : {result['workload']}")
            print(f"latency   : {result['avg_latency']:.2f} cycles/packet")
            print(f"power     : {result['power_w']:.2f} W")
            print(f"digest    : {payload['digest']}")
        else:
            _print_json(payload)
    else:
        print(f"error ({response.status}): "
              f"{response.payload.get('error', 'request failed')}",
              file=sys.stderr)
    return 0 if response.ok else 1


def _resolve_campaign_spec(args):
    """The CampaignSpec named by ``--spec`` (file path or named campaign)."""
    from repro.campaign import CampaignError, load_spec
    from repro.experiments.campaigns import NAMED_CAMPAIGNS

    if not args.spec:
        raise CLIError(
            "campaign run needs --spec FILE|NAME "
            f"(named campaigns: {', '.join(sorted(NAMED_CAMPAIGNS))})")
    named = NAMED_CAMPAIGNS.get(args.spec)
    if named is not None:
        return named
    try:
        return load_spec(args.spec)
    except CampaignError as exc:
        raise CLIError(str(exc)) from exc


def _campaign_dir(args, spec=None) -> Path:
    from repro.campaign import DEFAULT_CAMPAIGN_ROOT

    if args.dir:
        return Path(args.dir)
    name = spec.name if spec is not None else args.spec
    if not name:
        raise CLIError("campaign status/report needs --dir DIR or "
                       "--spec FILE|NAME to locate the manifest")
    from repro.experiments.campaigns import NAMED_CAMPAIGNS

    named = NAMED_CAMPAIGNS.get(name)
    if named is not None:
        name = named.name
    elif name.endswith((".toml", ".json")):
        name = _resolve_campaign_spec(args).name
    return DEFAULT_CAMPAIGN_ROOT / name


def _load_campaign_manifest(directory: Path) -> dict:
    from repro.campaign import CampaignError, load_manifest

    try:
        manifest = load_manifest(directory)
    except CampaignError as exc:
        raise CLIError(str(exc)) from exc
    if manifest is None:
        raise CLIError(f"no campaign manifest under {directory}; "
                       "run the campaign first")
    return manifest


def _campaign_objectives(args):
    if not getattr(args, "objectives", None):
        return None
    return tuple(_split_list(args.objectives, "objectives"))


def cmd_campaign(args) -> int:
    """Run/inspect/reduce a scenario campaign (see docs/campaigns.md)."""
    from repro.campaign import (
        CampaignError, manifest_report, manifest_status, run_campaign,
    )

    if args.action == "status":
        payload = manifest_status(_load_campaign_manifest(_campaign_dir(args)))
        if args.json:
            _print_json(payload)
        else:
            print(f"campaign  : {payload['name']} [{payload['status']}]")
            print(f"cells     : {payload['done']}/{payload['cells']} done "
                  f"({payload['pending']} pending, "
                  f"{payload['chunks_done']} chunks)")
            for source, count in payload["sources"].items():
                print(f"  {source:<9}: {count}")
        return 0

    if args.action == "report":
        manifest = _load_campaign_manifest(_campaign_dir(args))
        try:
            payload = manifest_report(manifest, _campaign_objectives(args))
        except CampaignError as exc:
            raise CLIError(str(exc)) from exc
        if not payload["frontier"]:
            raise CLIError("campaign has no completed, fully-measured "
                           "cells to reduce; run it first")
        if args.json:
            _print_json(payload)
            return 0
        status = payload["status"]
        objectives = payload["objectives"]
        print(f"campaign  : {status['name']} [{status['status']}] "
              f"{status['done']}/{status['cells']} cells")
        print(f"objectives: {', '.join(objectives)} (minimized)")
        print(f"frontier  : {payload['pareto']['size']} non-dominated cells")
        width = max(len(c["label"]) for c in payload["frontier"])
        for cell in payload["frontier"]:
            values = "  ".join(f"{name}={cell['objectives'][name]:.3f}"
                               for name in objectives)
            print(f"  {cell['label']:<{width}}  {values}")
        for metric, entry in payload["trend"].items():
            ratio = (f"{entry['ratio']:.2f}x" if entry["ratio"] is not None
                     else entry.get("note", "n/a"))
            print(f"trend {metric:<18}: {ratio}")
        return 0

    # -- run ----------------------------------------------------------------
    from repro.exec import ResultStore

    spec = _resolve_campaign_spec(args)
    kernel = getattr(args, "kernel", None)
    if kernel:
        from repro.campaign.spec import with_kernel

        spec = with_kernel(spec, kernel)
    topology = getattr(args, "topology", None)
    if topology:
        from repro.campaign.spec import with_topologies

        spec = with_topologies(spec, (topology,))
    directory = _campaign_dir(args, spec)
    client = None
    store = None
    if args.via_serve:
        from repro.serve.client import ServeClient

        client = ServeClient(args.host, args.port, timeout=args.timeout)
    else:
        store = ResultStore(args.cache)

    def progress(event: dict) -> None:
        if event["event"] == "chunk":
            print(f"chunk {event['chunk']}/{event['of']} "
                  f"({event['cells']} cells)", file=sys.stderr)
        else:
            label = {"hit": "warm", "done": "ran", "retry": "retry"}.get(
                event["event"], event["event"])
            wall = f" ({event['wall_s']:.1f}s)" if event.get("wall_s") else ""
            print(f"  {label:<5} {event['job']}{wall}", file=sys.stderr)

    try:
        result = run_campaign(
            spec, store=store, directory=directory, jobs=args.jobs,
            client=client, fresh=args.fresh, max_chunks=args.max_chunks,
            progress=progress,
        )
    except CampaignError as exc:
        raise CLIError(str(exc)) from exc
    summary = result.summary()
    if args.json:
        _print_json({"summary": summary,
                     "manifest": str(result.directory / "campaign.json"),
                     "trend": result.trend()})
        return 0
    print(f"campaign  : {summary['name']} [{summary['status']}] "
          f"{summary['done']}/{summary['cells']} cells")
    print(f"this run  : {summary['cold']} simulated, {summary['warm']} warm, "
          f"{summary['carried']} carried over "
          f"({summary['chunks_run']} chunks, {summary['wall_s']:.1f}s)")
    if summary["cycles_per_sec"]:
        print(f"throughput: {summary['cycles_per_sec']:.0f} sim cycles/s")
    pareto = summary["pareto"]
    print(f"frontier  : {pareto['size']} non-dominated cells over "
          f"({', '.join(pareto['objectives'])})")
    print(f"manifest  : {result.directory / 'campaign.json'}")
    return 0


class _DeprecatedAlias(argparse.Action):
    """A hidden pre-1.0 flag spelling: still works, but warns on use.

    ``const`` names the current spelling; the alias is slated for removal
    in v2.0 (see the parser epilog).
    """

    def __call__(self, parser, namespace, values, option_string=None):
        warnings.warn(
            f"{option_string} is deprecated and will be removed in "
            f"v2.0; use {self.const} instead",
            DeprecationWarning, stacklevel=2)
        setattr(namespace, self.dest, values)


def _add_common(parser, *, jobs: bool = False, trace: bool = False,
                trace_help: str = "", faults: bool = False,
                kernel: bool = False, topology: bool = False) -> None:
    """The shared flag vocabulary of the executing verbs."""
    parser.add_argument("--seed", type=int, default=None,
                        help="override the traffic seed")
    parser.add_argument("--fast", action="store_true",
                        help="short simulation windows")
    if kernel:
        parser.add_argument(
            "--kernel", choices=_kernel_names(), default=None,
            help="cycle-execution kernel (bit-identical results; see "
                 "'repro kernels list' for the registry and capability "
                 "flags)")
    if topology:
        parser.add_argument(
            "--topology", choices=_topology_names(), default=None,
            help="substrate topology provider (see 'repro topologies "
                 "list'; non-mesh providers simulate a different network "
                 "and fork the result cache)")
    if jobs:
        parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes (1 = in-process serial)")
    if trace:
        parser.add_argument("--trace-events", metavar="PATH", default=None,
                            help=trace_help or "write cycle-level event "
                            "trace(s) as JSONL to PATH")
    if faults:
        parser.add_argument(
            "--faults", metavar="SPEC", default=None,
            help="fault schedule, e.g. 'band:3;link:12-13@100-500' or "
                 "'mtbf:bands=16,mtbf=50000,horizon=12000,seed=1' "
                 "(see docs/faults.md)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RF-I overlaid CMP NoC reproduction (HPCA 2008)",
        epilog="Deprecated: the pre-1.0 spellings 'simulate --trace' and "
               "'sweep --traces' still work but emit a DeprecationWarning; "
               "they will be removed in v2.0 — use --workload/--workloads.",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {package_version()}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add(name: str, help: str) -> argparse.ArgumentParser:
        cmd = sub.add_parser(name, help=help)
        cmd.add_argument("--json", action="store_true",
                         help="machine-readable output on stdout")
        return cmd

    add("params", "print Fig 5a parameters").set_defaults(fn=cmd_params)

    floorplan = add("floorplan", "render the CMP floorplan")
    floorplan.add_argument("--access-points", type=int, default=50)
    floorplan.set_defaults(fn=cmd_floorplan)

    add("list", "list experiments").set_defaults(fn=cmd_list)

    workloads = add(
        "workloads", "characterize every workload (locality, hotspots)"
    )
    workloads.add_argument("--cycles", type=int, default=8_000)
    workloads.add_argument("--seed", type=int, default=None)
    workloads.set_defaults(fn=cmd_workloads)

    run = add("run", "run an experiment (or 'all')")
    run.add_argument("experiment")
    _add_common(run, jobs=True, trace=True)
    run.add_argument("--out", help="also write tables to this directory")
    run.set_defaults(fn=cmd_run)

    simulate = add("simulate", "one (design, workload) cell")
    simulate.add_argument("--design", default="baseline",
                          choices=DESIGN_STYLES)
    simulate.add_argument("--width", type=int, default=16, choices=[16, 8, 4])
    simulate.add_argument("--workload", default="uniform")
    # Pre-1.0 spelling, kept as a hidden alias until v2.0.
    simulate.add_argument("--trace", dest="workload", const="--workload",
                          action=_DeprecatedAlias,
                          default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    _add_common(simulate, jobs=True, trace=True, faults=True, kernel=True,
                topology=True,
                trace_help="write this run's cycle-level events as JSONL "
                           "to PATH")
    simulate.add_argument("--out", help="also write the full result as JSON")
    simulate.add_argument("--heatmap", action="store_true",
                          help="print the traffic heatmap afterwards")
    simulate.add_argument(
        "--online", nargs="?", const="", default=None, metavar="SPEC",
        help="closed-loop run: adapt the overlay online (optional "
             "control spec, e.g. 'epoch=600,hysteresis=0.03'; phased "
             "workloads like 'phased:hotBiDF+uniDF@4000' need this)")
    simulate.set_defaults(fn=cmd_simulate)

    sweep = add("sweep", "parallel design-grid sweep with the result cache")
    sweep.add_argument("--styles", default="baseline,static,adaptive",
                       help="comma-separated design styles")
    sweep.add_argument("--widths", default="16,8,4",
                       help="comma-separated mesh link widths (bytes)")
    sweep.add_argument("--workloads", default="uniform",
                       help="comma-separated workload names")
    # Pre-1.0 spelling, kept as a hidden alias until v2.0.
    sweep.add_argument("--traces", dest="workloads", const="--workloads",
                       action=_DeprecatedAlias,
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    sweep.add_argument("--adaptive-routing", action="store_true")
    sweep.add_argument("--cache", default="benchmarks/results/cache",
                       help="persistent result-store directory")
    sweep.add_argument("--no-cache", action="store_true",
                       help="skip the persistent store entirely")
    _add_common(sweep, jobs=True, trace=True, faults=True, kernel=True,
                topology=True,
                trace_help="directory: write one JSONL event trace per "
                           "simulated cell (bypasses the cache)")
    sweep.add_argument(
        "--batch", action="store_true",
        help="advance every cache miss in one process in lock-step cycle "
             "slices (digest-identical to the serial path; --jobs is then "
             "ignored)")
    sweep.add_argument("--out", help="also write results + telemetry JSON")
    sweep.add_argument(
        "--online", nargs="?", const="", default=None, metavar="SPEC",
        help="make every cell a closed-loop run (optional control spec; "
             "styles are then restricted to baseline/adaptive)")
    sweep.set_defaults(fn=cmd_sweep)

    control = add("control", "closed-loop online reconfiguration run")
    control.add_argument("--design", default="adaptive",
                         choices=["baseline", "adaptive"],
                         help="'adaptive' warm-starts from the first "
                              "phase's offline profile; 'baseline' cold-"
                              "starts with no shortcuts")
    control.add_argument("--width", type=int, default=16, choices=[16, 8, 4])
    control.add_argument("--workload", default="uniform",
                         help="a workload name or a phased composite, "
                              "e.g. 'phased:hotBiDF+2Hotspot+uniDF@4000'")
    control.add_argument("--control", metavar="SPEC", default=None,
                         help="control-loop knobs, e.g. 'epoch=600,"
                              "hysteresis=0.03,decay=0.25,min=50'")
    control.add_argument("--access-points", type=int, default=None)
    control.add_argument("--journal", metavar="PATH", default=None,
                         help="write the decision journal as JSONL")
    control.add_argument("--compare-static", action="store_true",
                         help="also run every phase's static placement on "
                              "the full workload and report the best")
    control.add_argument("--cache", default="benchmarks/results/cache",
                         help="persistent result-store directory")
    control.add_argument("--no-cache", action="store_true",
                         help="skip the persistent store entirely")
    _add_common(control, faults=True, kernel=True, topology=True)
    control.set_defaults(fn=cmd_control)

    kernels = add("kernels", "list the registered cycle-execution kernels")
    kernels.add_argument(
        "action", nargs="?", default="list", choices=["list"],
        help="list the registry rows (name, capabilities, default)")
    kernels.set_defaults(fn=cmd_kernels)

    topologies = add("topologies",
                     "list the registered substrate topology providers")
    topologies.add_argument(
        "action", nargs="?", default="list", choices=["list"],
        help="list the registry rows (name, capabilities, default)")
    topologies.set_defaults(fn=cmd_topologies)

    serve = add("serve", "host the asyncio simulation service")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8032)
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admission queue bound (full -> 429)")
    serve.add_argument("--timeout", type=float, default=600.0,
                       help="per-request wait ceiling, seconds")
    serve.add_argument("--cache", default="benchmarks/results/cache",
                       help="persistent result-store directory")
    serve.add_argument("--no-cache", action="store_true",
                       help="serve without the persistent store")
    serve.add_argument("--workers", type=int, default=1,
                       help="N>1: spawn N sharded workers behind a "
                            "consistent-hash router on --port")
    serve.add_argument("--shard-id", default=None,
                       help="stable worker identity in /healthz "
                            "(the cluster supervisor sets this)")
    serve.add_argument("--shared-cache", default=None, metavar="DIR",
                       help="read-through store tier shared across "
                            "shards (miss here falls back before "
                            "computing; writes are mirrored)")
    _add_common(serve, jobs=True, kernel=True, topology=True)
    serve.set_defaults(fn=cmd_serve)

    campaign = add("campaign", "declarative, resumable scenario campaigns")
    campaign.add_argument(
        "action", nargs="?", default="run",
        choices=["run", "status", "report"],
        help="run a campaign, print a manifest's progress, or reduce "
             "it to Pareto frontiers + trends")
    campaign.add_argument(
        "--spec", default=None,
        help="campaign spec file (.toml/.json) or a named campaign "
             "(e-series, r-series, e-topology, smoke)")
    campaign.add_argument(
        "--dir", default=None,
        help="campaign directory holding the checkpoint manifest "
             "(default benchmarks/results/campaigns/<name>)")
    campaign.add_argument("--cache", default="benchmarks/results/cache",
                          help="persistent result-store directory")
    campaign.add_argument("--fresh", action="store_true",
                          help="ignore any existing manifest and restart")
    campaign.add_argument(
        "--max-chunks", type=int, default=None,
        help="execute at most N chunks this invocation, then checkpoint "
             "and stop (the campaign resumes on the next run)")
    campaign.add_argument("--via-serve", action="store_true",
                          help="drive cold cells through a running "
                               "'repro serve' instead of a local pool")
    campaign.add_argument("--host", default="127.0.0.1")
    campaign.add_argument("--port", type=int, default=8032)
    campaign.add_argument("--timeout", type=float, default=600.0,
                          help="serve-client socket timeout, seconds")
    campaign.add_argument(
        "--objectives", default=None,
        help="comma-separated reduction objectives for 'report' "
             "(latency, flit_latency, power, area, fault_drops)")
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes (1 = in-process serial)")
    campaign.add_argument(
        "--kernel", choices=_kernel_names(), default=None,
        help="cycle-execution kernel for fresh cells (bit-identical "
             "results; never changes cell or campaign digests)")
    campaign.add_argument(
        "--topology", choices=_topology_names(), default=None,
        help="restrict the spec's topology axis to one provider "
             "(non-mesh choices fork the campaign digest and manifest)")
    campaign.set_defaults(fn=cmd_campaign)

    request = add("request", "query a running simulation service")
    request.add_argument(
        "what", nargs="?", default="simulate",
        choices=["simulate", "sweep", "health", "metrics", "trace", "job",
                 "cluster"],
    )
    request.add_argument("--host", default="127.0.0.1")
    request.add_argument("--port", type=int, default=8032)
    request.add_argument("--timeout", type=float, default=600.0,
                        help="client socket timeout, seconds")
    request.add_argument("--timeout-s", type=float, default=None,
                        help="server-side per-request deadline, seconds")
    request.add_argument("--design", default="baseline",
                        choices=list(DESIGN_STYLES))
    request.add_argument("--width", type=int, default=16,
                        choices=[16, 8, 4])
    request.add_argument("--workload", default="uniform")
    request.add_argument("--seed", type=int, default=None)
    request.add_argument("--faults", metavar="SPEC", default=None)
    request.add_argument("--topology", choices=_topology_names(),
                         default=None,
                         help="substrate topology provider for the "
                              "requested cell(s)")
    request.add_argument("--styles", default="baseline")
    request.add_argument("--widths", default="16")
    request.add_argument("--workloads", default="uniform")
    request.add_argument("--follow", action="store_true",
                        help="after 'sweep', stream the job's NDJSON events")
    request.add_argument("--id", default=None, help="job id for 'job'")
    request.set_defaults(fn=cmd_request)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code.

    Exit codes are normalized: 0 success, 2 bad input.  Bad input under
    ``--json`` emits one single-line JSON error object on stderr (with
    the package version), so scripted callers never have to scrape prose.
    """
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CLIError as exc:
        if getattr(args, "json", False):
            print(json.dumps({"error": str(exc),
                              "version": package_version()}),
                  file=sys.stderr)
        else:
            print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
