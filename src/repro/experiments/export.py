"""Export experiment results as JSON for downstream plotting.

The benches write human-readable tables; this module flattens a
:class:`~repro.experiments.figures.FigureResult` into plain JSON-safe
structures (numpy scalars to floats, dataclasses to dicts, tuple keys to
strings) so the same results can feed matplotlib, a notebook, or a paper
build without re-running simulations.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path


def jsonable(value):
    """Recursively convert a result value into JSON-safe primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: jsonable(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {_key(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    # numpy scalars and anything else numeric-like.
    for caster in (float, str):
        try:
            return caster(value)
        except (TypeError, ValueError):
            continue
    raise TypeError(f"cannot make {type(value)!r} JSON-safe")


def _key(key) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, (int, float, bool)):
        return str(key)
    if isinstance(key, tuple):
        return "/".join(str(part) for part in key)
    return str(key)


def save_json(data, path: str | Path) -> Path:
    """Write any jsonable payload to ``path`` (parents created) and return it.

    Keys are sorted so repeated exports of identical data are byte-identical
    (the sweep engine's determinism checks rely on this).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(jsonable(data), indent=2, sort_keys=True) + "\n")
    return path


def figure_to_dict(result) -> dict:
    """Flatten a FigureResult (table rows + series + paper targets)."""
    return {
        "experiment": result.experiment,
        "title": result.table.title,
        "columns": list(result.table.columns),
        "rows": [list(row) for row in result.table.rows],
        "notes": list(result.table.notes),
        "series": jsonable(result.series),
        "paper": jsonable(result.paper),
    }


def save_figure_json(result, path: str | Path) -> Path:
    """Write one experiment's data to ``path`` and return it."""
    path = Path(path)
    path.write_text(json.dumps(figure_to_dict(result), indent=2) + "\n")
    return path


def save_all(results, directory: str | Path) -> list[Path]:
    """Write a collection of FigureResults as ``<id>.json`` files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [
        save_figure_json(result, directory / f"{result.experiment.lower()}.json")
        for result in results
    ]
