"""R-series resilience experiments: graceful degradation under faults.

The paper's architecture argument leans on the mesh remaining a correct
fallback whenever RF-I resources disappear.  These experiments measure
that claim as degradation curves:

* :func:`r1_shortcut_degradation` — kill 0..all RF bands (a fixed seeded
  permutation, so each fault set nests inside the next) and track
  latency/power for the baseline, static, and adaptive designs.  The
  baseline has no shortcuts, so its row is the flat reference; at the
  far end (every band dead) both overlay designs must collapse onto it.
* :func:`r2_transient_outage` — drop RF bands and a mesh link for a
  window in the middle of the measured phase and compare against the
  fault-free run, alongside the drop/retry/reroute counters that show
  the runtime machinery absorbing the outage.

Both return the same :class:`FigureResult` shape as the paper-figure
experiments, so they plug into ``python -m repro run R1``/``R2``.
"""

from __future__ import annotations

from repro.experiments.figures import FigureResult
from repro.experiments.report import Table, normalized
from repro.experiments.runner import ExperimentRunner
from repro.faults import FaultSchedule, kill_bands

#: Dead-band counts R1 sweeps over (out of the 16-band budget).
R1_STEPS = (0, 4, 8, 12, 16)

#: Seed for the R1 band-kill permutation (fixed: curves must nest).
R1_SEED = 17


def r1_shortcut_degradation(
    runner: ExperimentRunner, workload: str = "uniform",
) -> FigureResult:
    """Latency/power vs dead RF bands for baseline/static/adaptive.

    Fault sets are nested (``kill_bands`` kills a prefix of one seeded
    permutation), so the curves are monotone-comparable: each step only
    adds faults.  Expected shape: overlay latency degrades monotonically
    toward the baseline's as bands die, with the adaptive design both
    starting lower and degrading more gently than the static one; power
    falls with the shed RF traffic.
    """
    num_bands = runner.params.rfi.shortcut_budget
    designs = [
        ("baseline", runner.design("baseline", 16)),
        ("static", runner.design("static", 16)),
        ("adaptive", runner.design("adaptive", 16, workload=workload)),
    ]
    table = Table(
        f"R1 — degradation vs dead RF bands ({workload})",
        ["dead bands"] + [f"{name} lat" for name, _ in designs]
        + [f"{name} W" for name, _ in designs],
    )
    series: dict = {
        name: {"latency": {}, "power": {}} for name, _ in designs
    }
    for dead in R1_STEPS:
        schedule = kill_bands(dead, num_bands=num_bands, seed=R1_SEED)
        row = []
        for name, design in designs:
            result = runner.run_unicast(design, workload, faults=schedule)
            series[name]["latency"][dead] = result.avg_latency
            series[name]["power"][dead] = result.total_power_w
            row.append(result)
        table.add(dead, *(r.avg_latency for r in row),
                  *(r.total_power_w for r in row))
    for name, _ in designs[1:]:
        lat = series[name]["latency"]
        series[f"{name}_vs_baseline_at_{num_bands}"] = normalized(
            lat[num_bands], series["baseline"]["latency"][num_bands]
        )
    table.note("fault sets nest (seeded prefix kill); baseline = flat "
               "reference; all-dead overlay rows must match it")
    paper = {
        "all_bands_dead_matches_baseline": True,
        "adaptive_degrades_more_gently_than_static": True,
    }
    return FigureResult("R1", table, series, paper)


def r2_transient_outage(
    runner: ExperimentRunner, workload: str = "uniform",
) -> FigureResult:
    """A mid-run RF + mesh-link outage window vs the fault-free run.

    The outage opens shortly after warmup and spans half the measured
    window: two RF bands and one central mesh link go down, then repair.
    Latency should rise versus the clean run but delivery must stay
    complete — the runtime fault state stalls, retries, and reroutes
    around the dead resources instead of losing packets.
    """
    sim = runner.config.sim
    start = sim.warmup_cycles + 200
    end = start + sim.measure_cycles // 2
    spec = (f"band:0@{start}-{end};band:1@{start}-{end};"
            f"link:44-45@{start}-{end}")
    schedule = FaultSchedule.parse(spec)
    designs = [
        ("static", runner.design("static", 16)),
        ("adaptive", runner.design("adaptive", 16, workload=workload)),
    ]
    table = Table(
        f"R2 — transient outage cycles {start}-{end} ({workload})",
        ["design", "clean lat", "outage lat", "ratio", "delivery",
         "drops", "retries", "reroutes"],
    )
    series: dict = {"outage": spec}
    for name, design in designs:
        clean = runner.run_unicast(design, workload)
        faulted = runner.run_unicast(design, workload, faults=schedule)
        stats = faulted.stats
        ratio = normalized(faulted.avg_latency, clean.avg_latency)
        table.add(name, clean.avg_latency, faulted.avg_latency, ratio,
                  stats.delivery_ratio, stats.fault_drops,
                  stats.fault_retries, stats.fault_reroutes)
        series[name] = {
            "clean_latency": clean.avg_latency,
            "outage_latency": faulted.avg_latency,
            "latency_ratio": ratio,
            "delivery_ratio": stats.delivery_ratio,
            "fault_drops": stats.fault_drops,
            "fault_retries": stats.fault_retries,
            "fault_reroutes": stats.fault_reroutes,
        }
    table.note("transient faults repair mid-run; delivery stays complete "
               "while latency absorbs the outage")
    paper = {
        "delivery_stays_complete": True,
        "outage_latency_above_clean": True,
    }
    return FigureResult("R2", table, series, paper)
