"""Experiment harness: configs, runner, and per-figure reproduction."""

from repro.experiments.ablations import (
    a1_shortcut_budget, a2_access_points, a3_escape_vcs, a4_multicast_epoch,
    a5_router_buffers,
)
# NOTE: repro.experiments.campaigns is deliberately NOT imported here.
# It depends on repro.campaign, which depends on repro.exec.engine, which
# imports this package's config submodule mid-load — importing it from
# this __init__ would close that cycle.  Import it directly::
#
#     from repro.experiments.campaigns import NAMED_CAMPAIGNS
from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG, ExperimentConfig
from repro.experiments.control import (
    o1_closed_loop_vs_static, o2_reconfiguration_under_faults,
)
from repro.experiments.figures import (
    FIG7_PAPER, FIG8_PAPER, FIG9_PAPER, FIG10_PAPER, TABLE2_PAPER,
    FigureResult, e1_load_latency, e2_adaptive_routing,
    e3_static_shortcut_gains, e4_heuristic_ablation, fig1_traffic_locality,
    fig2_topologies, fig7_rf_router_count, fig8_bandwidth_reduction,
    fig9_multicast, fig10_unified, table2_area,
)
from repro.experiments.repetition import (
    RepeatedMeasure, RepeatedRun, repeat_unicast, seed_stability, t_critical,
)
from repro.experiments.report import Table, geomean, normalized
from repro.experiments.resilience import (
    r1_shortcut_degradation, r2_transient_outage,
)
from repro.experiments.runner import ExperimentRunner, RunResult
from repro.experiments.saturation import SaturationResult, find_saturation

__all__ = [
    "DEFAULT_CONFIG",
    "a1_shortcut_budget",
    "a2_access_points",
    "a3_escape_vcs",
    "a4_multicast_epoch",
    "a5_router_buffers",
    "ExperimentConfig",
    "ExperimentRunner",
    "FAST_CONFIG",
    "FIG10_PAPER",
    "FIG7_PAPER",
    "FIG8_PAPER",
    "FIG9_PAPER",
    "FigureResult",
    "RepeatedMeasure",
    "RepeatedRun",
    "RunResult",
    "SaturationResult",
    "TABLE2_PAPER",
    "Table",
    "find_saturation",
    "repeat_unicast",
    "seed_stability",
    "t_critical",
    "e1_load_latency",
    "e2_adaptive_routing",
    "e3_static_shortcut_gains",
    "e4_heuristic_ablation",
    "fig1_traffic_locality",
    "fig2_topologies",
    "fig7_rf_router_count",
    "fig8_bandwidth_reduction",
    "fig9_multicast",
    "fig10_unified",
    "geomean",
    "normalized",
    "o1_closed_loop_vs_static",
    "o2_reconfiguration_under_faults",
    "r1_shortcut_degradation",
    "r2_transient_outage",
    "table2_area",
]
