"""Reproduction of every table and figure in the evaluation.

Each ``fig*``/``table*``/``e*`` function runs the relevant design points and
workloads through an :class:`ExperimentRunner` and returns a
:class:`FigureResult`: the measured series, the paper's published targets
(where the supplied text states them), and a rendered text table.

E-series experiments reconstruct the titled HPCA-2008 paper's evaluation
(static shortcuts, load-latency, adaptive routing, selection heuristics);
F/T-series reproduce the follow-on's figures (see DESIGN.md for the
provenance discussion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.experiments.report import Table, geomean, normalized
from repro.experiments.runner import ExperimentRunner
from repro.noc import RoutingPolicy, RoutingTables, Simulator
from repro.shortcuts import (
    SelectionConfig, mesh_distances, select_architecture_shortcuts, total_cost,
)
from repro.traffic import (
    APPLICATION_NAMES, APPLICATIONS, PATTERN_NAMES, ProbabilisticTraffic,
    application_pattern, distance_histogram,
)


@dataclass
class FigureResult:
    """Measured data + paper targets + rendered table for one experiment."""

    experiment: str
    table: Table
    series: dict = field(default_factory=dict)
    paper: dict = field(default_factory=dict)

    def render(self) -> str:
        """The experiment's table as display-ready text."""
        return self.table.render()


# ---------------------------------------------------------------------------
# Figure 1 — traffic locality histograms
# ---------------------------------------------------------------------------

def fig1_traffic_locality(
    runner: ExperimentRunner, num_messages: int = 20_000
) -> FigureResult:
    """Messages vs Manhattan distance for the x264/bodytrack models.

    Published shape: x264 has a flat distance profile reaching 14 hops;
    bodytrack peaks at 1 hop and has almost no traffic at 14.
    """
    topo = runner.topology
    table = Table(
        "Figure 1 — traffic by Manhattan distance",
        ["distance"] + list(APPLICATION_NAMES[:2]),
    )
    series = {}
    for app in APPLICATION_NAMES[:2]:
        hist = distance_histogram(
            topo, application_pattern(topo, APPLICATIONS[app]), num_messages
        )
        series[app] = dict(hist.rows())
        series[f"{app}_median"] = hist.median_count
    max_d = max(max(series[a]) for a in APPLICATION_NAMES[:2])
    for d in range(1, max_d + 1):
        table.add(d, *(series[a].get(d, 0) for a in APPLICATION_NAMES[:2]))
    table.note("x264: flat profile, traffic at max distance; bodytrack: local")
    paper = {
        "x264_reaches_14_hops": True,
        "bodytrack_max_distance": 13,
        "bodytrack_more_local_than_x264": True,
    }
    return FigureResult("F1", table, series, paper)


# ---------------------------------------------------------------------------
# Figure 2 — topology renders
# ---------------------------------------------------------------------------

def fig2_topologies(runner: ExperimentRunner) -> FigureResult:
    """ASCII versions of Fig 2: access points, static and adaptive shortcuts."""
    topo = runner.topology
    static = runner.design("static", 16)
    adaptive = runner.design("adaptive", 16, workload="1Hotspot")
    table = Table(
        "Figure 2 — topologies",
        ["design", "shortcuts", "endpoints", "waveguide_mm"],
    )
    for point in (static, adaptive):
        report = point.overlay.report()
        table.add(
            point.name, report.num_shortcuts, report.num_access_points,
            report.waveguide_mm,
        )
    series = {
        "floorplan": topo.render(set(topo.rf_enabled_routers(50))),
        "static_shortcuts": [(s.src, s.dst) for s in static.shortcuts],
        "adaptive_shortcuts": [(s.src, s.dst) for s in adaptive.shortcuts],
    }
    return FigureResult("F2", table, series, {"rf_enabled_routers": 50})


# ---------------------------------------------------------------------------
# Figure 7 — number of RF-enabled routers
# ---------------------------------------------------------------------------

FIG7_PAPER = {
    "static": {"latency": 0.80, "power": 1.11},
    "adaptive50": {"latency": 0.68, "power": 1.24},
    "adaptive25": {"latency": 0.72, "power": 1.15},
}


def fig7_rf_router_count(runner: ExperimentRunner) -> FigureResult:
    """Static vs adaptive-50 vs adaptive-25 at 16 B, across the 7 traces."""
    table = Table(
        "Figure 7 — RF-enabled router count (normalized to 16B baseline)",
        ["trace", "static lat", "ad50 lat", "ad25 lat",
         "static pwr", "ad50 pwr", "ad25 pwr"],
    )
    series: dict = {k: {"latency": {}, "power": {}} for k in FIG7_PAPER}
    for trace in PATTERN_NAMES:
        base = runner.run_unicast(runner.design("baseline", 16), trace)
        cells = {}
        for key, style, aps in (
            ("static", "static", None),
            ("adaptive50", "adaptive", 50),
            ("adaptive25", "adaptive", 25),
        ):
            result = runner.run_unicast(
                runner.design(style, 16, workload=trace, num_access_points=aps),
                trace,
            )
            cells[key] = (
                normalized(result.avg_latency, base.avg_latency),
                normalized(result.total_power_w, base.total_power_w),
            )
            series[key]["latency"][trace] = cells[key][0]
            series[key]["power"][trace] = cells[key][1]
        table.add(
            trace,
            cells["static"][0], cells["adaptive50"][0], cells["adaptive25"][0],
            cells["static"][1], cells["adaptive50"][1], cells["adaptive25"][1],
        )
    means = {
        k: (
            geomean(list(series[k]["latency"].values())),
            geomean(list(series[k]["power"].values())),
        )
        for k in series
    }
    table.add(
        "MEAN",
        means["static"][0], means["adaptive50"][0], means["adaptive25"][0],
        means["static"][1], means["adaptive50"][1], means["adaptive25"][1],
    )
    for k, (lat, pwr) in means.items():
        series[k]["mean_latency"] = lat
        series[k]["mean_power"] = pwr
    table.note(
        "paper means: static 0.80/1.11, adaptive50 0.68/1.24, adaptive25 0.72/1.15"
    )
    return FigureResult("F7", table, series, FIG7_PAPER)


# ---------------------------------------------------------------------------
# Figure 8 — mesh bandwidth reduction
# ---------------------------------------------------------------------------

FIG8_PAPER = {
    ("baseline", 8): {"latency": 1.04, "power": 0.52},
    ("baseline", 4): {"latency": 1.27, "power": 0.28},
    ("static", 4): {"latency": 1.11, "power": 0.33},
    ("adaptive", 4): {"latency": 0.99, "power": 0.38},
}

FIG8_STYLES = ("baseline", "static", "adaptive")
FIG8_WIDTHS = (16, 8, 4)


def fig8_bandwidth_reduction(runner: ExperimentRunner) -> FigureResult:
    """16/8/4 B x {baseline, static, adaptive-50}, across the 7 traces."""
    table = Table(
        "Figure 8 — link-width reduction (normalized to 16B baseline)",
        ["trace", "design", "width", "latency", "power"],
    )
    series: dict = {}
    for trace in PATTERN_NAMES:
        base = runner.run_unicast(runner.design("baseline", 16), trace)
        for style in FIG8_STYLES:
            for width in FIG8_WIDTHS:
                design = runner.design(style, width, workload=trace)
                result = runner.run_unicast(design, trace)
                lat = normalized(result.avg_latency, base.avg_latency)
                pwr = normalized(result.total_power_w, base.total_power_w)
                series.setdefault((style, width), {})[trace] = (lat, pwr)
                table.add(trace, style, f"{width}B", lat, pwr)
    for (style, width), per_trace in series.items():
        lat = geomean([v[0] for v in per_trace.values()])
        pwr = geomean([v[1] for v in per_trace.values()])
        per_trace["mean"] = (lat, pwr)
        table.add("MEAN", style, f"{width}B", lat, pwr)
    table.note(
        "paper means: 8B base 1.04/0.52; 4B base 1.27/0.28; "
        "4B static 1.11/0.33; 4B adaptive ~0.99/0.38"
    )
    return FigureResult("F8", table, series, FIG8_PAPER)


# ---------------------------------------------------------------------------
# Table 2 — area
# ---------------------------------------------------------------------------

TABLE2_PAPER = {
    ("baseline", 16): 30.29, ("baseline", 8): 9.38, ("baseline", 4): 3.25,
    ("static", 16): 32.65, ("adaptive", 16): 37.66,
    ("static", 8): 10.41, ("adaptive", 8): 12.60,
    ("static", 4): 3.92, ("adaptive", 4): 5.34,
}


def table2_area(runner: ExperimentRunner) -> FigureResult:
    """The nine area rows of Table 2 (mm^2 on the active layer)."""
    table = Table(
        "Table 2 — NoC area (mm^2)",
        ["design", "router", "link", "rf-i", "total", "paper total"],
    )
    series = {}
    rows = [
        ("baseline", 16), ("baseline", 8), ("baseline", 4),
        ("static", 16), ("adaptive", 16),
        ("static", 8), ("adaptive", 8),
        ("static", 4), ("adaptive", 4),
    ]
    for style, width in rows:
        if style == "adaptive":
            design = runner.design(style, width, workload="uniform")
        else:
            design = runner.design(style, width)
        area = runner.power_model.area(design)
        series[(style, width)] = area
        table.add(
            f"{style}-{width}B", area.router_mm2, area.link_mm2,
            area.rfi_mm2, area.total_mm2, TABLE2_PAPER[(style, width)],
        )
    reduction = 1 - series[("adaptive", 4)].total_mm2 / series[("baseline", 16)].total_mm2
    series["adaptive4_vs_baseline16_reduction"] = reduction
    table.note(f"adaptive-4B area reduction vs 16B baseline: {reduction:.1%} "
               "(paper: 82.3%)")
    return FigureResult("T2", table, series, TABLE2_PAPER)


# ---------------------------------------------------------------------------
# Figure 9 — multicast
# ---------------------------------------------------------------------------

FIG9_PAPER = {
    ("vct", 20): {"latency": 0.97},
    ("mc", 20): {"latency": 0.86, "power": 1.11},
    ("mc+sc", 20): {"latency": 0.63, "power": 1.25},
    "vct_worse_at_50": True,
}


def fig9_multicast(runner: ExperimentRunner) -> FigureResult:
    """VCT vs RF multicast vs multicast+shortcuts at 20%/50% locality."""
    table = Table(
        "Figure 9 — multicast (normalized to 16B baseline mesh)",
        ["design", "locality", "latency", "power"],
    )
    series: dict = {}
    for locality in (20, 50):
        base = runner.run_multicast(
            runner.design("baseline", 16), "unicast", locality
        )
        entries = [
            ("vct", runner.design("baseline", 16), "vct"),
            ("mc", runner.design("mc-only", 16), "rf"),
            ("mc+sc", runner.design("adaptive+mc", 16, workload="uniform"), "rf"),
        ]
        for name, design, realization in entries:
            result = runner.run_multicast(design, realization, locality)
            lat = normalized(result.avg_latency, base.avg_latency)
            pwr = normalized(result.total_power_w, base.total_power_w)
            series[(name, locality)] = {"latency": lat, "power": pwr}
            table.add(name, f"{locality}%", lat, pwr)
    table.note(
        "paper: VCT ~0.97 at 20% but worse at 50%; MC 0.86/1.11; MC+SC 0.63/1.25"
    )
    return FigureResult("F9", table, series, FIG9_PAPER)


# ---------------------------------------------------------------------------
# Figure 10 — unified comparison
# ---------------------------------------------------------------------------

FIG10_PAPER = {
    "adaptive_4B_dominates_unicast": True,
    "wire_shortcuts_slower_than_rf": True,
    "mc_sc_4B": {"performance": 1.15, "power": 0.31},
}


def fig10_unified(runner: ExperimentRunner) -> FigureResult:
    """Power/performance scatter over all unicast and multicast designs.

    Normalized performance is (baseline latency / design latency) so >1 is
    faster, matching the paper's axis.  Averaged over the 7 traces for
    unicast designs; over the multicast workload for multicast designs.
    """
    table = Table(
        "Figure 10 — unified power/performance (vs 16B baseline)",
        ["design", "width", "performance", "power"],
    )
    series: dict = {}

    def record(name: str, width: int, perf: float, power: float) -> None:
        series[(name, width)] = {"performance": perf, "power": power}
        table.add(name, f"{width}B", perf, power)

    # Unicast designs, averaged over the seven probabilistic traces.
    for style in ("baseline", "wire", "static", "adaptive"):
        for width in FIG8_WIDTHS:
            perfs, powers = [], []
            for trace in PATTERN_NAMES:
                base = runner.run_unicast(runner.design("baseline", 16), trace)
                design = runner.design(style, width, workload=trace)
                result = runner.run_unicast(design, trace)
                perfs.append(base.avg_latency / result.avg_latency)
                powers.append(result.total_power_w / base.total_power_w)
            record(style, width, geomean(perfs), geomean(powers))

    # Multicast designs at 20% locality (the paper's headline combination).
    base_mc = runner.run_multicast(runner.design("baseline", 16), "unicast", 20)
    for name, style, realization in (
        ("rf-multicast", "mc-only", "rf"),
        ("adaptive+unicast-mc", "adaptive", "unicast"),
        ("adaptive+rf-mc", "adaptive+mc", "rf"),
    ):
        for width in FIG8_WIDTHS:
            design = runner.design(style, width, workload="uniform")
            result = runner.run_multicast(design, realization, 20)
            record(
                name, width,
                base_mc.avg_latency / result.avg_latency,
                result.total_power_w / base_mc.total_power_w,
            )
    table.note(
        "paper: adaptive-4B matches 16B baseline at ~0.35x power; "
        "4B mesh + 15 shortcuts + RF-MC: 1.15x performance at ~0.31x power"
    )
    return FigureResult("F10", table, series, FIG10_PAPER)


# ---------------------------------------------------------------------------
# E-series: the titled HPCA-2008 paper's reconstructed experiments
# ---------------------------------------------------------------------------

def e1_load_latency(
    runner: ExperimentRunner,
    trace: str = "uniform",
    rates: tuple = (0.005, 0.02, 0.04, 0.06, 0.08),
) -> FigureResult:
    """Load-latency curves: baseline vs static RF-I shortcuts.

    The 2008 paper's core claim: shortcuts cut latency across the operating
    range.  The sweep runs up toward the shortcut-contention knee — past it
    the fixed shortcuts become bottlenecks, which is E2's subject.
    """
    table = Table(
        f"E1 — load vs latency ({trace})",
        ["rate", "baseline lat", "static lat", "speedup"],
    )
    series: dict = {"baseline": {}, "static": {}}
    for rate in rates:
        row = {}
        for style in ("baseline", "static"):
            design = runner.design(style, 16)
            network = design.new_network()
            source = ProbabilisticTraffic(
                runner.topology, runner.pattern(trace), rate,
                seed=runner.config.traffic_seed,
            )
            stats = Simulator(network, [source], runner.config.sim).run()
            row[style] = stats.avg_packet_latency
            series[style][rate] = stats.avg_packet_latency
        table.add(rate, row["baseline"], row["static"],
                  row["baseline"] / row["static"])
    return FigureResult(
        "E1", table, series,
        {"static_latency_reduction_mean": 0.20},
    )


def e2_adaptive_routing(
    runner: ExperimentRunner, trace: str = "uniform",
    rates: tuple = (0.05, 0.07, 0.09),
) -> FigureResult:
    """Deterministic vs congestion-adaptive shortcut routing under load.

    Reconstructs the 2008 paper's adaptive-routing study.  Fixed shortcuts
    attract traffic: past a knee the shortest-path (deterministic) network
    becomes *slower than the bare mesh* because every long-haul flow piles
    onto 16 transmitters.  The adaptive policy compares estimated transmitter
    wait against the mesh-detour cost and peels marginal flows off first,
    recovering most of the contention loss.
    """
    from repro.noc import Network, RoutingPolicy

    table = Table(
        f"E2 — adaptive shortcut routing ({trace}, static shortcut set)",
        ["rate", "deterministic lat", "adaptive lat", "mesh-only lat", "gain"],
    )
    series: dict = {"deterministic": {}, "adaptive": {}, "mesh": {}}
    static = runner.design("static", 16)
    mesh = runner.design("baseline", 16)
    for rate in rates:
        row = {}
        cases = (
            ("deterministic", static, RoutingPolicy()),
            ("adaptive", static, RoutingPolicy(adaptive=True)),
            ("mesh", mesh, RoutingPolicy()),
        )
        for name, design, policy in cases:
            network = Network(
                runner.topology, design.params, design.tables, policy
            )
            source = ProbabilisticTraffic(
                runner.topology, runner.pattern(trace), rate,
                seed=runner.config.traffic_seed,
            )
            stats = Simulator(network, [source], runner.config.sim).run()
            row[name] = stats.avg_packet_latency
            series[name][rate] = stats.avg_packet_latency
        table.add(rate, row["deterministic"], row["adaptive"], row["mesh"],
                  row["deterministic"] / row["adaptive"])
    table.note(
        "deterministic shortcuts collapse past the contention knee; the "
        "adaptive policy diverts marginal flows and recovers the loss"
    )
    return FigureResult(
        "E2", table, series, {"adaptive_helps_at_high_load": True}
    )


def e3_static_shortcut_gains(runner: ExperimentRunner) -> FigureResult:
    """Per-trace latency reduction of static shortcuts (paper: ~20% mean)."""
    table = Table(
        "E3 — static RF-I shortcut latency reduction",
        ["trace", "baseline lat", "static lat", "reduction"],
    )
    reductions = []
    series = {}
    for trace in PATTERN_NAMES:
        base = runner.run_unicast(runner.design("baseline", 16), trace)
        static = runner.run_unicast(runner.design("static", 16), trace)
        reduction = 1 - static.avg_latency / base.avg_latency
        reductions.append(reduction)
        series[trace] = reduction
        table.add(trace, base.avg_latency, static.avg_latency, reduction)
    mean = sum(reductions) / len(reductions)
    series["mean"] = mean
    table.add("MEAN", float("nan"), float("nan"), mean)
    table.note("paper: ~20% average latency reduction")
    return FigureResult("E3", table, series, {"mean_reduction": 0.20})


def e4_heuristic_ablation(runner: ExperimentRunner) -> FigureResult:
    """Fig 3a vs Fig 3b selection heuristics: quality and runtime.

    The paper: both 'perform comparably well'; the greedy one is O(B V^3)
    vs the permutation heuristic's exhaustive evaluation.
    """
    topo = runner.topology
    table = Table(
        "E4 — selection heuristic ablation",
        ["heuristic", "avg shortest path", "total cost", "seconds"],
    )
    series = {}
    base_cost = total_cost(mesh_distances(topo))
    table.add("none (mesh)", RoutingTables(topo).average_distance(),
              base_cost, 0.0)
    for method in ("greedy", "permutation"):
        start = time.perf_counter()
        shortcuts = select_architecture_shortcuts(
            topo, SelectionConfig(budget=16), method
        )
        elapsed = time.perf_counter() - start
        tables = RoutingTables(topo, shortcuts)
        dist = mesh_distances(topo)
        from repro.shortcuts import add_edge_inplace

        for sc in shortcuts:
            add_edge_inplace(dist, sc.src, sc.dst)
        cost = total_cost(dist)
        series[method] = {
            "avg_distance": tables.average_distance(),
            "total_cost": cost,
            "seconds": elapsed,
        }
        table.add(method, tables.average_distance(), cost, elapsed)
    ratio = series["greedy"]["total_cost"] / series["permutation"]["total_cost"]
    series["cost_ratio"] = ratio
    table.note(f"greedy/permutation cost ratio: {ratio:.3f} (paper: comparable)")
    return FigureResult("E4", table, series, {"comparable": True})
