"""Plain-text rendering of experiment outputs (paper-vs-measured tables)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Table:
    """A simple column-aligned text table with an optional title."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *cells) -> None:
        """Append one row (cells are auto-formatted)."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([_fmt(c) for c in cells])

    def note(self, text: str) -> None:
        """Attach a footnote rendered under the table."""
        self.notes.append(text)

    def render(self) -> str:
        """The table as column-aligned text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def normalized(value: float, reference: float) -> float:
    """value / reference with a guard for degenerate references."""
    if reference == 0:
        return float("nan")
    return value / reference


def geomean(values: list[float]) -> float:
    """Geometric mean of the positive values (nan if none)."""
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
