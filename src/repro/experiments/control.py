"""O-series experiments: the online reconfiguration control plane.

The control plane's reason to exist is a workload whose communication
pattern *changes mid-run*: an offline-profiled placement is tuned for
exactly one phase, so some phase always runs on the wrong shortcuts.
These experiments measure that claim end to end through
:mod:`repro.control`:

* :func:`o1_closed_loop_vs_static` — on a three-phase workload, the
  closed loop (which pays every drain, tuning, and table-update cycle
  it causes) must beat the **best** single static placement, i.e. the
  strongest offline competitor evaluated after the fact.
* :func:`o2_reconfiguration_under_faults` — the loop keeps
  reconfiguring while an active :class:`~repro.faults.FaultSchedule`
  kills RF bands mid-run; delivery stays complete and the journal
  still shows applied decisions (the fault state rebinds to each
  retuned table instead of pinning stale bands).

Both run under a dedicated config: the control loop needs a measured
window long enough for phases to *happen* (the default 2,500-cycle
window ends before the second epoch), and injection rates high enough
that placement quality is visible above noise.  The O-series therefore
builds its own runner, sharing only the caller's params and store.
"""

from __future__ import annotations

from dataclasses import replace

from repro.control.run import best_static_latencies, run_closed_loop
from repro.experiments.figures import FigureResult
from repro.experiments.report import Table, normalized
from repro.experiments.runner import ExperimentRunner
from repro.params import SimulationParams

#: The phased workload O1/O2 run: three phases whose best placements
#: genuinely differ (4Hotspot is deliberately absent — its placement is
#: a strong generalist that blunts the phase contrast).
O_WORKLOAD = "phased:hotBiDF+2Hotspot+uniDF@4000"

#: Control knobs the O-series uses: short epochs cut reaction lag after
#: a phase boundary, the raised hysteresis bar blocks mid-phase churn,
#: and the fast decay forgets the previous phase quickly.
O_CONTROL = "epoch=600,hysteresis=0.03,decay=0.25,min=50"

#: Measured window: long enough for all three 4,000-cycle phases plus
#: the wrap-around to be visible.
O_SIM = SimulationParams(
    warmup_cycles=500, measure_cycles=24_000, drain_cycles=6_000,
)

#: Injection rates: higher than the defaults so placement quality
#: dominates queueing noise, still below every design's saturation.
O_RATES = {
    "uniform": 0.024,
    "uniDF": 0.024,
    "biDF": 0.024,
    "hotBiDF": 0.018,
    "1Hotspot": 0.018,
    "2Hotspot": 0.018,
    "4Hotspot": 0.018,
}


def control_runner(runner: ExperimentRunner) -> ExperimentRunner:
    """The dedicated O-series runner (shares params + store only).

    The caller's kernel choice (and any other sim knob the O-series does
    not pin) is preserved; only the window lengths and rates change.
    """
    sim = replace(runner.config.sim,
                  warmup_cycles=O_SIM.warmup_cycles,
                  measure_cycles=O_SIM.measure_cycles,
                  drain_cycles=O_SIM.drain_cycles)
    config = replace(runner.config, sim=sim, rates=dict(O_RATES))
    return ExperimentRunner(config, runner.params, store=runner.store)


def o1_closed_loop_vs_static(
    runner: ExperimentRunner, workload: str = O_WORKLOAD,
) -> FigureResult:
    """Closed loop vs the best static placement on a phased workload.

    Every unique phase's offline-profiled adaptive design runs the full
    phased workload unchanged; the best of those is the strongest
    static competitor.  The closed loop runs the same traffic while
    paying its own reconfiguration cost in-band — and must still come
    out ahead, because no single placement fits all three phases.
    """
    ctl = control_runner(runner)
    loop = run_closed_loop(ctl, workload, style="adaptive",
                           control=O_CONTROL)
    static = best_static_latencies(ctl, workload)
    best = min(static, key=static.get)
    summary = loop.summary()
    table = Table(
        f"O1 — closed loop vs static placements ({workload})",
        ["design", "latency", "vs best static", "applied", "skipped"],
    )
    for name in sorted(static):
        table.add(f"static[{name}]", static[name],
                  normalized(static[name], static[best]), "-", "-")
    table.add("closed-loop", loop.result.avg_latency,
              normalized(loop.result.avg_latency, static[best]),
              summary["applied"], summary["skipped"])
    table.note(f"control: {loop.control.canonical()}; journal "
               f"{summary['journal_digest'][:16]} "
               f"({summary['overhead_cycles']} overhead cycles charged)")
    series = {
        "workload": workload,
        "control": loop.control.canonical(),
        "closed_loop_latency": loop.result.avg_latency,
        "static_latencies": static,
        "best_static": {"placement": best, "latency": static[best]},
        "margin": static[best] - loop.result.avg_latency,
        "journal": summary,
        "decisions": loop.journal.to_dicts(),
    }
    paper = {
        "closed_loop_beats_best_static":
            loop.result.avg_latency < static[best],
        "reconfiguration_cost_charged_in_band": True,
    }
    return FigureResult("O1", table, series, paper)


def o2_reconfiguration_under_faults(
    runner: ExperimentRunner, workload: str = O_WORKLOAD,
) -> FigureResult:
    """The closed loop keeps adapting while RF bands die mid-run.

    Two bands go down for the middle third of the measured window.  The
    fault state maps band faults through whatever table is live, so
    each applied reconfiguration rebinds the faults to the *new* owner
    of the band — the run must stay fully delivered, and the journal
    must still contain applied decisions.
    """
    ctl = control_runner(runner)
    start = O_SIM.warmup_cycles + O_SIM.measure_cycles // 3
    end = O_SIM.warmup_cycles + 2 * O_SIM.measure_cycles // 3
    spec = f"band:0@{start}-{end};band:1@{start}-{end}"
    clean = run_closed_loop(ctl, workload, style="adaptive",
                            control=O_CONTROL)
    faulted = run_closed_loop(ctl, workload, style="adaptive",
                              control=O_CONTROL, faults=spec)
    table = Table(
        f"O2 — closed loop under band faults cycles {start}-{end}",
        ["run", "latency", "delivery", "applied", "skipped", "drops",
         "retries", "reroutes"],
    )
    series: dict = {"workload": workload, "faults": spec}
    for name, run in (("clean", clean), ("faulted", faulted)):
        stats = run.result.stats
        summary = run.summary()
        table.add(name, run.result.avg_latency, stats.delivery_ratio,
                  summary["applied"], summary["skipped"],
                  stats.fault_drops, stats.fault_retries,
                  stats.fault_reroutes)
        series[name] = {
            "latency": run.result.avg_latency,
            "delivery_ratio": stats.delivery_ratio,
            "journal": summary,
            "fault_drops": stats.fault_drops,
            "fault_retries": stats.fault_retries,
            "fault_reroutes": stats.fault_reroutes,
        }
    table.note("band faults rebind to each retuned table; the loop keeps "
               "applying reconfigurations through the outage")
    paper = {
        "delivery_stays_complete": True,
        "loop_still_applies_under_faults":
            series["faulted"]["journal"]["applied"] >= 1,
    }
    return FigureResult("O2", table, series, paper)
