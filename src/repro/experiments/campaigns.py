"""Named campaign definitions: the committed, citable scenario sweeps.

Hand-written experiment scripts scale to a handful of cells; these specs
are the declarative replacements (see :mod:`repro.campaign`).  Each is a
frozen :class:`~repro.campaign.spec.CampaignSpec` the CLI can run by
name (``repro campaign run --spec e-series``) and tests/CI can import.

* ``e-series`` — the paper's own design space: every overlay style x
  mesh link width x a locality-diverse workload set, reduced to the
  (latency, power) Pareto frontier (the Fig 10 question, asked of the
  whole grid instead of cherry-picked points).
* ``r-series`` — the resilience space: static vs adaptive overlays
  under structural and MTBF fault schedules, reduced over
  (latency, fault_drops).
* ``e-topology`` — the overlay x substrate space: every overlay style
  on every registered first-party topology provider (mesh, concentrated
  mesh, torus), asking the paper's question of stronger baselines —
  where does the RF-I overlay still buy latency/power once the
  substrate itself gets better?
* ``smoke`` — an 8-cell fast-config campaign (2 styles x 2 widths x
  2 workloads) small enough for CI to run cold-then-warm on every push.
"""

from __future__ import annotations

from repro.campaign.spec import CampaignSpec

E_SERIES = CampaignSpec(
    name="e-series",
    styles=("baseline", "static", "wire", "adaptive"),
    widths=(16, 8, 4),
    workloads=("uniform", "1Hotspot", "biDF"),
    objectives=("latency", "power"),
    chunk=6,
)

R_SERIES = CampaignSpec(
    name="r-series",
    styles=("static", "adaptive"),
    widths=(16,),
    workloads=("uniform", "1Hotspot"),
    faults=(
        "",
        "band:0;band:1;band:2;band:3",
        "mtbf:bands=16,mtbf=40000,repair=4000,horizon=8000,seed=3",
    ),
    objectives=("latency", "fault_drops"),
    chunk=4,
)

E_TOPOLOGY = CampaignSpec(
    name="e-topology",
    styles=("baseline", "static", "adaptive"),
    widths=(16,),
    workloads=("uniform", "1Hotspot"),
    topologies=("mesh", "cmesh", "torus"),
    objectives=("latency", "power"),
    chunk=6,
    fast=True,
)

SMOKE = CampaignSpec(
    name="smoke",
    styles=("baseline", "static"),
    widths=(16, 8),
    workloads=("uniform", "1Hotspot"),
    objectives=("latency", "power"),
    chunk=4,
    fast=True,
)

#: Every named campaign the CLI accepts in place of a spec-file path.
NAMED_CAMPAIGNS: dict[str, CampaignSpec] = {
    spec.name: spec for spec in (E_SERIES, R_SERIES, E_TOPOLOGY, SMOKE)
}
