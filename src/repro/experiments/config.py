"""Experiment configuration: workloads, loads, and run lengths.

The paper simulates probabilistic traces for one million network cycles;
this harness defaults to shorter warmed-up windows (pure-Python runs) that
preserve steady-state comparisons.  Injection rates are chosen per pattern
so that *every* design point in an experiment — including the narrow 4 B
mesh — operates below saturation, as the paper's stable Fig 7/8 averages
require; rates are documented assumptions (the paper does not publish its
trace loads).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.params import SimulationParams

#: Messages per component per network cycle, per probabilistic pattern.
DEFAULT_RATES: dict[str, float] = {
    "uniform": 0.012,
    "uniDF": 0.012,
    "biDF": 0.012,
    "hotBiDF": 0.010,
    "1Hotspot": 0.010,
    "2Hotspot": 0.010,
    "4Hotspot": 0.010,
}

#: Default per-application rates are carried by the models themselves
#: (:data:`repro.traffic.APPLICATIONS`).


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the experiment harness."""

    sim: SimulationParams = SimulationParams(
        warmup_cycles=400,
        measure_cycles=2_500,
        drain_cycles=12_000,
    )
    rates: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_RATES))
    profile_cycles: int = 20_000   # injection-only profiling for selection
    seed: int = 2008
    traffic_seed: int = 5          # distinct from the profiling seed
    num_access_points: int = 50
    multicast_epoch_cycles: int = 4
    multicast_rate: float = 0.002  # multicast messages per cache bank per cycle
    base_rate_with_multicast: float = 0.012

    def rate_for(self, workload: str) -> float:
        """Injection rate for a workload (with a sane default)."""
        return self.rates.get(workload, 0.012)


#: Faster settings for unit tests and quick examples.
FAST_CONFIG = ExperimentConfig(
    sim=SimulationParams(
        warmup_cycles=200, measure_cycles=800, drain_cycles=6_000
    ),
    profile_cycles=5_000,
)

DEFAULT_CONFIG = ExperimentConfig()
