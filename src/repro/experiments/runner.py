"""Experiment runner: builds design points, runs workloads, caches results.

Many figures share design points and workloads (Fig 7 is the 16 B column of
Fig 8's grid; Fig 10 replots both), so results are memoized on
(design, workload, realization) — one simulation feeds every figure that
needs it.

Memoization is two-level.  In memory, results are keyed on the full design
cache key (style, link width, profile workload, access points, adaptive
routing) so two designs that happen to share a name can never alias.  When
the runner is given a :class:`~repro.exec.store.ResultStore`, every cell
that is addressable as a :class:`~repro.exec.jobs.JobSpec` is also looked
up in — and written back to — the persistent on-disk cache, so repeated
harness invocations (and parallel sweeps; see :mod:`repro.exec.engine`)
never re-simulate a cell whose inputs have not changed.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.core import (
    DesignPoint, RFIOverlay, adaptive_rf, adaptive_rf_multicast, baseline,
    static_rf, wire_static,
)
from repro.experiments.config import DEFAULT_CONFIG, ExperimentConfig
from repro.multicast import (
    MulticastAwareSource, RFRealization, UnicastExpansion, VCTRealization,
)
from repro.noc import NetworkStats, Simulator
from repro.noc.topology import TopologyProvider, build_topology, resolve_topology
from repro.obs.result import RunResult
from repro.params import DEFAULT_PARAMS, ArchitectureParams
from repro.power import NoCPowerModel
from repro.traffic import (
    APPLICATIONS, CombinedTraffic, MulticastConfig, MulticastTraffic,
    ProbabilisticTraffic, all_patterns, application_pattern,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec.jobs import JobSpec
    from repro.exec.store import ResultStore
    from repro.obs import Observation
    from repro.obs.profile import StageProfile
    from repro.params import SimulationParams

__all__ = ["ExperimentRunner", "PreparedRun", "RunResult"]


@dataclasses.dataclass
class PreparedRun:
    """A built-but-unrun experiment cell.

    Either ``result`` is already set (memo or store hit — nothing to
    simulate) or ``simulator`` holds the ready cell and :meth:`finish`
    packages its statistics into a :class:`RunResult` (applying the same
    store/memo writes the monolithic ``run_*`` path performs).  The
    lock-step batch executor (:func:`repro.exec.run_sweep` with
    ``batch=True``) drives many prepared cells' simulators concurrently
    via :meth:`Simulator.start`.
    """

    result: Optional[RunResult] = None
    simulator: Optional[Simulator] = None
    package: Optional[Callable[[NetworkStats], RunResult]] = None

    def finish(self, stats: NetworkStats) -> RunResult:
        """Package the finished simulation's statistics."""
        return self.package(stats)


class ExperimentRunner:
    """Shared context for all experiments: topology, profiles, caches."""

    def __init__(
        self,
        config: ExperimentConfig = DEFAULT_CONFIG,
        params: ArchitectureParams = DEFAULT_PARAMS,
        store: Optional["ResultStore"] = None,
    ):
        self.config = config
        self.params = params
        self.store = store
        self.topology = build_topology(params.mesh)
        self.power_model = NoCPowerModel()
        self.patterns = all_patterns(self.topology)
        self.simulations_run = 0       # real Simulator executions (not cached)
        # Per-provider context: the default provider's entries are aliases
        # of the public ``topology`` / ``patterns`` attributes.
        self._topologies: dict[str, TopologyProvider] = {
            self.topology.name: self.topology
        }
        self._patterns_by_topo: dict[str, dict] = {
            self.topology.name: self.patterns
        }
        self._profiles: dict[tuple[str, str], np.ndarray] = {}
        self._results: dict[tuple, RunResult] = {}
        self._designs: dict[tuple, DesignPoint] = {}
        self._design_keys: dict[int, tuple] = {}   # id(design) -> design key
        self._degraded: dict[tuple, DesignPoint] = {}  # (key, faults) -> point

    # -- topologies ----------------------------------------------------------

    def topology_for(self, name: Optional[str] = None) -> TopologyProvider:
        """The (cached) provider instance for a registry name.

        ``None`` means the runner's default — whatever
        ``params.mesh.provider`` selects.  Providers are built once per
        runner; every design, pattern, and profile for a given substrate
        shares the instance.
        """
        resolved = resolve_topology(name, self.params.mesh.provider)
        if resolved not in self._topologies:
            self._topologies[resolved] = build_topology(
                self.params.mesh, resolved
            )
        return self._topologies[resolved]

    def _patterns_for(self, topology: TopologyProvider) -> dict:
        if topology.name not in self._patterns_by_topo:
            self._patterns_by_topo[topology.name] = all_patterns(topology)
        return self._patterns_by_topo[topology.name]

    # -- workloads -----------------------------------------------------------

    def pattern(self, workload: str, topology: Optional[TopologyProvider] = None):
        """A probabilistic pattern or application pattern by name.

        ``topology`` selects the substrate the pattern is laid out on
        (hotspot banks, quadrant masks, and dataflow groups are all
        placement-dependent); the default is the runner's topology.
        """
        topo = topology or self.topology
        patterns = self._patterns_for(topo)
        if workload in patterns:
            return patterns[workload]
        if workload in APPLICATIONS:
            return application_pattern(topo, APPLICATIONS[workload])
        raise KeyError(f"unknown workload {workload!r}")

    def rate(self, workload: str) -> float:
        """Injection rate for a workload name (pattern or application)."""
        if workload in APPLICATIONS:
            return APPLICATIONS[workload].rate
        return self.config.rate_for(workload)

    def profile(
        self, workload: str, topology: Optional[TopologyProvider] = None,
    ) -> np.ndarray:
        """Profiled communication-frequency matrix F(x, y) for a workload.

        Profiles are per-substrate (the matrix is indexed by router id),
        cached on (topology, workload).
        """
        topo = topology or self.topology
        key = (topo.name, workload)
        if key not in self._profiles:
            source = ProbabilisticTraffic(
                topo, self.pattern(workload, topo), self.rate(workload),
                seed=self.config.seed,
            )
            self._profiles[key] = source.collect_profile(
                self.config.profile_cycles
            )
        return self._profiles[key]

    def _unicast_source(
        self,
        workload: str,
        seed: Optional[int] = None,
        topology: Optional[TopologyProvider] = None,
    ):
        topo = topology or self.topology
        return ProbabilisticTraffic(
            topo, self.pattern(workload, topo), self.rate(workload),
            seed=self.config.traffic_seed if seed is None else seed,
        )

    def _multicast_workload(
        self,
        locality_percent: int,
        topology: Optional[TopologyProvider] = None,
    ):
        topo = topology or self.topology
        return CombinedTraffic([
            ProbabilisticTraffic(
                topo, self._patterns_for(topo)["uniform"],
                self.config.base_rate_with_multicast,
                seed=self.config.traffic_seed,
            ),
            MulticastTraffic(
                topo,
                MulticastConfig(
                    rate=self.config.multicast_rate,
                    locality_percent=locality_percent,
                ),
                seed=self.config.traffic_seed,
            ),
        ])

    # -- design points ----------------------------------------------------------

    def design(
        self,
        style: str,
        link_bytes: int,
        workload: Optional[str] = None,
        num_access_points: Optional[int] = None,
        adaptive_routing: bool = False,
        topology: Optional[str] = None,
    ) -> DesignPoint:
        """Build (and cache) a design point.

        ``style``: 'baseline', 'static', 'wire', 'adaptive', 'adaptive+mc',
        or 'mc-only'.  Adaptive styles require ``workload`` (the profile the
        overlay reconfigures for).  ``topology`` names a registered
        provider to build on (None — the runner's default substrate).
        """
        aps = num_access_points or self.config.num_access_points
        if style not in ("adaptive", "adaptive+mc"):
            workload = None            # non-profiled styles ignore the profile
        topo = self.topology_for(topology)
        key = (style, link_bytes, workload, aps, adaptive_routing, topo.name)
        if key in self._designs:
            return self._designs[key]
        if style == "baseline":
            point = baseline(link_bytes, self.params, topo)
        elif style == "static":
            point = static_rf(link_bytes, self.params, topo)
        elif style == "wire":
            point = wire_static(link_bytes, self.params, topo)
        elif style == "adaptive":
            point = adaptive_rf(
                self.profile(workload, topo), link_bytes, aps,
                self.params, topo,
                adaptive_routing=adaptive_routing,
            )
        elif style == "adaptive+mc":
            point = adaptive_rf_multicast(
                self.profile(workload, topo), link_bytes, aps,
                self.params, topo,
            )
        elif style == "mc-only":
            point = self._mc_only_design(link_bytes, aps, topo)
        else:
            raise ValueError(f"unknown design style {style!r}")
        self._designs[key] = point
        self._design_keys[id(point)] = key
        return point

    def degraded(self, design: DesignPoint, faults) -> DesignPoint:
        """``design`` re-planned around a fault schedule (cached).

        ``faults`` is a spec string or :class:`FaultSchedule`; the degraded
        tables are built once per (design, schedule) pair.  With an empty
        schedule the original design is returned unchanged.
        """
        from repro.faults import as_schedule, degraded_design

        schedule = as_schedule(faults)
        if schedule is None:
            return design
        key = (self._design_key(design), schedule.canonical())
        if key not in self._degraded:
            self._degraded[key] = degraded_design(design, schedule)
        return self._degraded[key]

    def _mc_only_design(
        self,
        link_bytes: int,
        aps: int,
        topology: Optional[TopologyProvider] = None,
    ) -> DesignPoint:
        """Baseline mesh + the multicast band on every access-point Rx."""
        topo = topology or self.topology
        point = baseline(link_bytes, self.params, topo)
        overlay = RFIOverlay(
            topo, topo.rf_enabled_routers(aps),
            point.params.rfi, adaptive=True,
        )
        overlay.configure_multicast(topo.central_bank(0))
        return dataclasses.replace(
            point, name=f"mc-only-{link_bytes}B", overlay=overlay
        )

    # -- job addressing and the persistent store -----------------------------

    def _design_key(self, design: DesignPoint) -> tuple:
        """Collision-proof cache key for a design.

        Designs built by :meth:`design` key on their full construction
        parameters; hand-built designs key on object identity (never
        shared, so never aliased — but also never persisted).
        """
        key = self._design_keys.get(id(design))
        if key is not None:
            return key
        return ("anon", design.name, id(design))

    def spec_for(
        self,
        design: DesignPoint,
        workload: str,
        *,
        kind: str = "unicast",
        seed: Optional[int] = None,
        **fields,
    ) -> Optional["JobSpec"]:
        """The JobSpec addressing a cell, or None for hand-built designs."""
        key = self._design_keys.get(id(design))
        if key is None:
            return None
        from repro.exec import JobSpec, normalize_spec

        style, link_bytes, design_workload, aps, adaptive, topo_name = key
        if topo_name != self.params.mesh.provider:
            # A per-job topology request rides in ``extra`` (like faults)
            # so it reaches the digest; designs on the params' own
            # substrate add nothing, keeping historical addresses intact.
            merged = dict(fields.pop("extra", ()))
            merged["topology"] = topo_name
            fields["extra"] = tuple(sorted(merged.items()))
        return normalize_spec(
            JobSpec(
                kind=kind, style=style, link_bytes=link_bytes,
                workload=workload, seed=seed, num_access_points=aps,
                adaptive_routing=adaptive, design_workload=design_workload,
                **fields,
            ),
            self.config,
        )

    def _digest_for(self, spec: Optional["JobSpec"]) -> Optional[str]:
        """The store address (and provenance digest) of a spec, or None."""
        if spec is None:
            return None
        from repro.exec import job_digest

        return job_digest(spec, self.config, self.params)

    def _store_load(self, spec: Optional["JobSpec"]) -> Optional[dict]:
        if self.store is None or spec is None:
            return None
        return self.store.load(self._digest_for(spec))

    def _store_save(self, spec: Optional["JobSpec"], payload: dict) -> None:
        if self.store is None or spec is None:
            return
        from repro.experiments.export import jsonable

        self.store.save(
            self._digest_for(spec), payload, meta={"spec": jsonable(spec)},
        )

    # -- running ------------------------------------------------------------------

    def run_unicast(
        self,
        design: DesignPoint,
        workload: str,
        seed: Optional[int] = None,
        observation: Optional["Observation"] = None,
        faults=None,
        stage_profile: Optional["StageProfile"] = None,
    ) -> RunResult:
        """Simulate a probabilistic/application workload on a design.

        ``seed`` overrides the config's traffic seed (repetition studies);
        the default is the shared :attr:`ExperimentConfig.traffic_seed`.
        An ``observation`` forces a fresh (uncached, unmemoized) run with
        metrics/tracing attached; its snapshot rides in the result.
        ``faults`` (a spec string or :class:`~repro.faults.FaultSchedule`)
        degrades the design first; the schedule's canonical form is folded
        into the memo key and store digest, so zero-fault cells keep their
        historical addresses and faulted cells get their own.
        """
        prep = self.prepare_unicast(
            design, workload, seed=seed, observation=observation,
            faults=faults, stage_profile=stage_profile,
        )
        if prep.result is not None:
            return prep.result
        return prep.finish(prep.simulator.run())

    def prepare_unicast(
        self,
        design: DesignPoint,
        workload: str,
        seed: Optional[int] = None,
        observation: Optional["Observation"] = None,
        faults=None,
        stage_profile: Optional["StageProfile"] = None,
    ) -> PreparedRun:
        """Build a unicast cell without running it (see :class:`PreparedRun`).

        Same caching contract as :meth:`run_unicast` — memo and store hits
        come back as an immediate ``result``; a miss returns the ready
        :class:`Simulator`, and :meth:`PreparedRun.finish` applies the
        packaging and cache writes the monolithic path performs.
        """
        from repro.faults import as_schedule

        schedule = as_schedule(faults)
        resolved_seed = self.config.traffic_seed if seed is None else seed
        if schedule is None:
            spec = self.spec_for(design, workload, seed=resolved_seed)
            key = ("unicast", self._design_key(design), workload,
                   resolved_seed)
        else:
            spec = self.spec_for(
                design, workload, seed=resolved_seed,
                extra=(("faults", schedule.canonical()),),
            )
            key = ("unicast", self._design_key(design), workload,
                   resolved_seed, schedule.canonical())
            design = self.degraded(design, schedule)
        if observation is None and key in self._results:
            return PreparedRun(result=self._results[key])
        from repro.exec import encode_result

        payload = None if observation is not None else self._store_load(spec)
        if payload is not None:
            result = self._restore(payload, spec)
            if observation is None:
                self._results[key] = result
            return PreparedRun(result=result)
        simulator = Simulator(
            design.new_network(),
            [self._unicast_source(workload, resolved_seed, design.topology)],
            self.config.sim, observation=observation,
            stage_profile=stage_profile,
        )

        def package(stats: NetworkStats) -> RunResult:
            self.simulations_run += 1
            result = self._package(design, workload, stats,
                                   spec=spec, observation=observation)
            if observation is None:
                self._store_save(spec, encode_result(result))
                self._results[key] = result
            return result

        return PreparedRun(simulator=simulator, package=package)

    def run_multicast(
        self,
        design: DesignPoint,
        realization_style: str,
        locality_percent: int,
        observation: Optional["Observation"] = None,
        stage_profile: Optional["StageProfile"] = None,
    ) -> RunResult:
        """Simulate the Section 5.2 multicast workload on a design.

        ``realization_style``: 'unicast', 'vct', or 'rf'.  An
        ``observation`` forces a fresh run with metrics/tracing attached.
        """
        prep = self.prepare_multicast(
            design, realization_style, locality_percent,
            observation=observation, stage_profile=stage_profile,
        )
        if prep.result is not None:
            return prep.result
        return prep.finish(prep.simulator.run())

    def prepare_multicast(
        self,
        design: DesignPoint,
        realization_style: str,
        locality_percent: int,
        observation: Optional["Observation"] = None,
        stage_profile: Optional["StageProfile"] = None,
    ) -> PreparedRun:
        """Build a multicast cell without running it (see
        :meth:`prepare_unicast` for the contract)."""
        key = ("mc", self._design_key(design), realization_style,
               locality_percent)
        if observation is None and key in self._results:
            return PreparedRun(result=self._results[key])
        from repro.exec import encode_result

        spec = self.spec_for(
            design, f"multicast-{locality_percent}", kind="multicast",
            realization=realization_style, locality_percent=locality_percent,
        )
        payload = None if observation is not None else self._store_load(spec)
        if payload is not None:
            result = self._restore(payload, spec)
            self._results[key] = result
            return PreparedRun(result=result)
        network = design.new_network()
        if realization_style == "unicast":
            realization = UnicastExpansion(network)
        elif realization_style == "vct":
            realization = VCTRealization(network)
        elif realization_style == "rf":
            receivers = self._rf_receivers(design)
            realization = RFRealization(
                network, receivers,
                epoch_cycles=self.config.multicast_epoch_cycles,
            )
        else:
            raise ValueError(f"unknown realization {realization_style!r}")
        source = MulticastAwareSource(
            self._multicast_workload(locality_percent, design.topology),
            realization,
        )
        simulator = Simulator(network, [source], self.config.sim,
                              observation=observation,
                              stage_profile=stage_profile)

        def package(stats: NetworkStats) -> RunResult:
            self.simulations_run += 1
            result = self._package(
                design, f"multicast-{locality_percent}", stats,
                spec=spec, observation=observation,
            )
            if observation is None:
                self._store_save(spec, encode_result(result))
                self._results[key] = result
            return result

        return PreparedRun(simulator=simulator, package=package)

    def probe_unicast(
        self,
        design: DesignPoint,
        workload: str,
        rate: float,
        sim: Optional["SimulationParams"] = None,
    ) -> NetworkStats:
        """One measurement at an explicit injection rate (saturation probes).

        ``sim`` overrides the config's windows (probes use trimmed ones);
        the override is folded into the job digest so cached probes are
        only reused under identical windows.
        """
        sim = sim or self.config.sim
        spec = self.spec_for(
            design, workload, kind="probe", rate=rate,
            extra=(("sim", f"{sim.warmup_cycles}/{sim.measure_cycles}"
                           f"/{sim.drain_cycles}"),),
        )
        return self._cached_simulation(spec, lambda: Simulator(
            design.new_network(),
            [ProbabilisticTraffic(
                design.topology, self.pattern(workload, design.topology),
                rate, seed=self.config.traffic_seed,
            )],
            sim,
        ).run())

    def cached_stats(
        self,
        tag: str,
        fields: dict,
        simulate: Callable[[], NetworkStats],
    ) -> NetworkStats:
        """Store-backed stats for a hand-built cell (the ablation drivers).

        ``tag`` and ``fields`` must uniquely address the cell among all
        callers; the shared config and params are folded into the digest
        automatically, so changing either invalidates every cached cell.
        """
        from repro.exec import JobSpec

        spec = JobSpec(
            kind="stats", style=tag,
            extra=tuple(sorted((k, str(v)) for k, v in fields.items())),
        )
        return self._cached_simulation(spec, simulate)

    def _cached_simulation(
        self,
        spec: Optional["JobSpec"],
        simulate: Callable[[], NetworkStats],
    ) -> NetworkStats:
        from repro.exec import decode_stats, encode_stats

        payload = self._store_load(spec)
        if payload is not None:
            return decode_stats(payload["stats"])
        stats = simulate()
        self.simulations_run += 1
        self._store_save(spec, {"stats": encode_stats(stats)})
        return stats

    def _rf_receivers(self, design: DesignPoint) -> list[int]:
        if design.overlay is None or design.overlay.multicast_band is None:
            raise ValueError(f"{design.name} has no multicast band configured")
        return list(design.overlay.multicast_receivers)

    def _package(
        self,
        design: DesignPoint,
        workload: str,
        stats: NetworkStats,
        spec: Optional["JobSpec"] = None,
        observation: Optional["Observation"] = None,
    ) -> RunResult:
        return RunResult(
            design=design.name,
            workload=workload,
            avg_latency=stats.avg_packet_latency,
            avg_flit_latency=stats.avg_flit_latency,
            power=self.power_model.power(design, stats),
            area=self.power_model.area(design),
            stats=stats,
            metrics=observation.snapshot() if observation is not None else None,
            provenance=self._digest_for(spec),
        )

    def _restore(self, payload: dict, spec: Optional["JobSpec"]) -> RunResult:
        """Decode a cached payload, back-filling provenance if it predates it."""
        from repro.exec import decode_result

        result = decode_result(payload)
        if result.provenance is None and spec is not None:
            result = result.with_provenance(self._digest_for(spec))
        return result
