"""Ablations of the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one knob the paper fixed
by fiat (shortcut budget, access-point count, escape VCs, multicast
arbitration epoch, router buffering) and measures its effect, using the
same harness as the figure reproductions.
"""

from __future__ import annotations

import dataclasses

from repro.core import RFIOverlay, baseline
from repro.experiments.figures import FigureResult
from repro.experiments.report import Table
from repro.experiments.runner import ExperimentRunner
from repro.multicast import MulticastAwareSource, RFRealization, UnicastExpansion
from repro.noc import Network, RoutingTables, Simulator
from repro.shortcuts import (
    SelectionConfig, select_architecture_shortcuts, select_region_shortcuts,
)
from repro.traffic import (
    CombinedTraffic, MulticastConfig, MulticastTraffic, ProbabilisticTraffic,
)


def _unicast_stats(runner: ExperimentRunner, network: Network, trace: str):
    source = ProbabilisticTraffic(
        runner.topology, runner.pattern(trace), runner.rate(trace),
        seed=runner.config.traffic_seed,
    )
    return Simulator(network, [source], runner.config.sim).run()


# ---------------------------------------------------------------------------
# A1 — shortcut budget
# ---------------------------------------------------------------------------

def a1_shortcut_budget(
    runner: ExperimentRunner, budgets: tuple = (0, 4, 8, 16)
) -> FigureResult:
    """Sweep B on the static design: diminishing returns per shortcut."""
    topo = runner.topology
    table = Table(
        "A1 — shortcut budget ablation (uniform, 16B mesh)",
        ["budget", "avg shortest path", "avg latency"],
    )
    series = {}
    for budget in budgets:
        shortcuts = (
            select_architecture_shortcuts(topo, SelectionConfig(budget=budget))
            if budget else []
        )
        tables = RoutingTables(topo, shortcuts)
        stats = runner.cached_stats(
            "a1-budget", {"budget": budget, "trace": "uniform"},
            lambda: _unicast_stats(
                runner, Network(topo, runner.params, tables), "uniform"
            ),
        )
        series[budget] = {
            "avg_distance": tables.average_distance(),
            "latency": stats.avg_packet_latency,
        }
        table.add(budget, tables.average_distance(), stats.avg_packet_latency)
    table.note("every shortcut helps; the first half buys more than the second")
    return FigureResult("A1", table, series, {"diminishing_returns": True})


# ---------------------------------------------------------------------------
# A2 — access-point count
# ---------------------------------------------------------------------------

def a2_access_points(
    runner: ExperimentRunner,
    counts: tuple = (12, 25, 50, 100),
    trace: str = "1Hotspot",
) -> FigureResult:
    """How much selection freedom do N tunable access points buy?

    The paper compares 25/50/100 and reports 100 ~ 50 (Section 5.1.1); this
    sweep adds the selection-objective view: the weighted cost F*W of the
    chosen shortcuts, plus the RF static area each count pays for.
    """
    topo = runner.topology
    profile = runner.profile(trace)
    table = Table(
        f"A2 — access-point count ({trace})",
        ["access points", "weighted cost", "latency", "rf area mm2"],
    )
    series = {}
    from repro.shortcuts import add_edge_inplace, mesh_distances, total_cost

    for count in counts:
        aps = set(topo.rf_enabled_routers(count))
        shortcuts = select_region_shortcuts(
            topo, profile, SelectionConfig(budget=16, allowed=aps)
        )
        dist = mesh_distances(topo)
        for sc in shortcuts:
            add_edge_inplace(dist, sc.src, sc.dst)
        cost = total_cost(dist, profile)
        overlay = RFIOverlay(topo, sorted(aps), runner.params.rfi, adaptive=True)
        stats = runner.cached_stats(
            "a2-access-points", {"count": count, "trace": trace},
            lambda: _unicast_stats(
                runner,
                Network(topo, runner.params, RoutingTables(topo, shortcuts)),
                trace,
            ),
        )
        series[count] = {
            "weighted_cost": cost,
            "latency": stats.avg_packet_latency,
            "rf_area": overlay.active_area_mm2(),
        }
        table.add(count, cost, stats.avg_packet_latency,
                  overlay.active_area_mm2())
    table.note("paper: 100 access points performed comparably to 50")
    return FigureResult("A2", table, series, {"fifty_is_enough": True})


# ---------------------------------------------------------------------------
# A3 — escape virtual channels
# ---------------------------------------------------------------------------

def a3_escape_vcs(runner: ExperimentRunner) -> FigureResult:
    """Remove the reserved escape VCs and stress a shortcut ring.

    The paper reserves "eight virtual channels that only use conventional
    mesh links" for deadlock handling.  Without them, table routing over a
    cycle of shortcuts can (and under enough load, does) deadlock; with
    them every burst drains.
    """
    topo = runner.topology
    from repro.noc import Shortcut

    ring = [
        Shortcut(topo.router_id(1, 1), topo.router_id(8, 1)),
        Shortcut(topo.router_id(8, 1), topo.router_id(8, 8)),
        Shortcut(topo.router_id(8, 8), topo.router_id(1, 8)),
        Shortcut(topo.router_id(1, 8), topo.router_id(1, 1)),
    ]
    tables = RoutingTables(topo, ring)
    table = Table(
        "A3 — escape-VC ablation (shortcut ring, heavy random bursts)",
        ["escape VCs", "drained", "delivered", "injected"],
    )
    series = {}
    for escape in (2, 0):
        params = dataclasses.replace(
            runner.params,
            router=dataclasses.replace(
                runner.params.router, num_escape_vcs=escape
            ),
        )
        network = Network(topo, params, tables)
        import random

        rng = random.Random(77)
        for _ in range(800):
            for _ in range(10):
                src, dst = rng.sample(range(100), 2)
                from repro.noc import Message

                network.inject(Message(src=src, dst=dst, size_bytes=39))
            network.step()
        drained = network.drain(25_000)
        series[escape] = {
            "drained": drained,
            "delivered": network.stats.delivered_packets,
            "injected": network.stats.injected_packets,
        }
        table.add(escape, drained, network.stats.delivered_packets,
                  network.stats.injected_packets)
    table.note("escape VCs are what make shortcut overlays deadlock-free")
    return FigureResult("A3", table, series, {"escape_required": True})


# ---------------------------------------------------------------------------
# A4 — multicast arbitration epoch
# ---------------------------------------------------------------------------

def a4_multicast_epoch(
    runner: ExperimentRunner, epochs: tuple = (2, 8, 32)
) -> FigureResult:
    """Coarseness of the cluster round-robin on the multicast band.

    The paper amortizes arbitration "over many execution cycles" without
    quantifying the epoch.  Longer epochs cost waiting senders more; this
    sweep shows the latency growing with epoch length toward the
    serial-unicast baseline.
    """
    topo = runner.topology

    def workload():
        return CombinedTraffic([
            ProbabilisticTraffic(
                topo, runner.patterns["uniform"],
                runner.config.base_rate_with_multicast,
                seed=runner.config.traffic_seed,
            ),
            MulticastTraffic(
                topo,
                MulticastConfig(rate=runner.config.multicast_rate,
                                locality_percent=20),
                seed=runner.config.traffic_seed,
            ),
        ])

    table = Table(
        "A4 — multicast arbitration epoch",
        ["epoch (cycles)", "avg latency"],
    )
    series = {}
    # Baseline: multicasts as serial unicasts.
    base_design = runner.design("baseline", 16)

    def run_serial_unicast():
        base_net = base_design.new_network()
        return Simulator(
            base_net,
            [MulticastAwareSource(workload(), UnicastExpansion(base_net))],
            runner.config.sim,
        ).run()

    base_stats = runner.cached_stats(
        "a4-epoch", {"realization": "unicast", "locality": 20},
        run_serial_unicast,
    )
    series["unicast"] = base_stats.avg_packet_latency
    table.add("serial unicast", base_stats.avg_packet_latency)

    overlay_design = runner.design("mc-only", 16)

    def run_epoch(epoch_cycles: int):
        network = overlay_design.new_network()
        realization = RFRealization(
            network, list(overlay_design.overlay.multicast_receivers),
            epoch_cycles=epoch_cycles,
        )
        return Simulator(
            network, [MulticastAwareSource(workload(), realization)],
            runner.config.sim,
        ).run()

    for epoch in epochs:
        stats = runner.cached_stats(
            "a4-epoch", {"epoch": epoch, "locality": 20},
            lambda: run_epoch(epoch),
        )
        series[epoch] = stats.avg_packet_latency
        table.add(epoch, stats.avg_packet_latency)
    table.note("short epochs keep RF multicast ahead of serial unicasts")
    return FigureResult("A4", table, series, {"latency_grows_with_epoch": True})


# ---------------------------------------------------------------------------
# A5 — router buffering sensitivity
# ---------------------------------------------------------------------------

def a5_router_buffers(
    runner: ExperimentRunner,
    vc_counts: tuple = (2, 4, 8),
    rate: float = 0.05,
) -> FigureResult:
    """Sensitivity of the substrate to VC count at elevated load."""
    topo = runner.topology
    table = Table(
        f"A5 — virtual-channel sensitivity (uniform @ {rate})",
        ["VCs per port", "avg latency", "delivery ratio"],
    )
    series = {}
    for vcs in vc_counts:
        params = dataclasses.replace(
            runner.params,
            router=dataclasses.replace(runner.params.router, num_vcs=vcs),
        )

        def run_cell(cell_params=params):
            network = Network(topo, cell_params, RoutingTables(topo))
            source = ProbabilisticTraffic(
                topo, runner.patterns["uniform"], rate,
                seed=runner.config.traffic_seed,
            )
            return Simulator(network, [source], runner.config.sim).run()

        stats = runner.cached_stats(
            "a5-buffers", {"vcs": vcs, "rate": rate}, run_cell
        )
        series[vcs] = {
            "latency": stats.avg_packet_latency,
            "delivery": stats.delivery_ratio,
        }
        table.add(vcs, stats.avg_packet_latency, stats.delivery_ratio)
    table.note("more VCs relieve head-of-line blocking under load")
    return FigureResult("A5", table, series, {"more_vcs_help": True})
