"""Multi-seed repetition: are the reported numbers stable?

The paper reports single long runs (1M cycles); this reproduction uses
shorter windows, so the harness provides explicit repetition support: run a
(design, workload) cell across several traffic seeds and summarize with
mean, standard deviation, and coefficient of variation.  The A6 bench uses
this to show the normalized comparisons are seed-stable at the default
window lengths.

Per-seed cells route through :meth:`ExperimentRunner.run_unicast`, so they
are memoized, persisted when the runner has a result store, and — with
``jobs > 1`` — dispatched through the parallel sweep engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core import DesignPoint
from repro.experiments.runner import ExperimentRunner

#: Two-sided 95% Student-t critical values by degrees of freedom.  Between
#: tabulated rows the next-*smaller* df applies (t decreases with df, so
#: rounding down stays conservative); beyond the table, the normal limit.
T_TABLE_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    12: 2.179, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
    40: 2.021, 60: 2.000, 120: 1.980,
}

T_NORMAL_LIMIT = 1.960


def t_critical(df: int) -> float:
    """Two-sided 95% t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("need at least 1 degree of freedom (2 samples)")
    candidates = [entry for entry in T_TABLE_95 if entry <= df]
    if len(candidates) == len(T_TABLE_95):
        return T_NORMAL_LIMIT if df > max(T_TABLE_95) else T_TABLE_95[df]
    return T_TABLE_95[max(candidates)]


@dataclass(frozen=True)
class RepeatedMeasure:
    """Summary statistics of one metric over repeated runs."""

    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Arithmetic mean of the repeated values."""
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single value)."""
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        mu = self.mean
        return self.std / mu if mu else float("nan")

    def confidence_halfwidth(self, t_value: float | None = None) -> float:
        """~95% CI half-width; the t value defaults to the sample count's.

        Pass ``t_value`` explicitly to override (e.g. a different
        confidence level); single-sample measures have no spread and
        return 0.
        """
        if len(self.values) < 2:
            return 0.0
        if t_value is None:
            t_value = t_critical(len(self.values) - 1)
        return t_value * self.std / math.sqrt(len(self.values))


@dataclass(frozen=True)
class RepeatedRun:
    """Latency and power over repeated seeds for one cell."""

    design: str
    workload: str
    latency: RepeatedMeasure
    power_w: RepeatedMeasure


def repeat_unicast(
    runner: ExperimentRunner,
    design: DesignPoint,
    workload: str,
    seeds: tuple[int, ...] = (5, 17, 29, 41, 53),
    jobs: int = 1,
) -> RepeatedRun:
    """Run one unicast cell across several traffic seeds.

    ``jobs > 1`` dispatches the seed grid through the parallel sweep engine
    (runner-built designs only; hand-built designs fall back to serial).
    """
    specs = [runner.spec_for(design, workload, seed=seed) for seed in seeds]
    if jobs > 1 and all(spec is not None for spec in specs):
        from repro.exec import run_sweep

        report = run_sweep(
            specs, config=runner.config, params=runner.params,
            store=runner.store, jobs=jobs,
        )
        results = report.results
    else:
        results = [
            runner.run_unicast(design, workload, seed=seed) for seed in seeds
        ]
    return RepeatedRun(
        design=design.name,
        workload=workload,
        latency=RepeatedMeasure(tuple(r.avg_latency for r in results)),
        power_w=RepeatedMeasure(tuple(r.total_power_w for r in results)),
    )


def seed_stability(
    runner: ExperimentRunner,
    workload: str = "uniform",
    seeds: tuple[int, ...] = (5, 17, 29),
    jobs: int = 1,
) -> dict[str, RepeatedRun]:
    """Repeat the baseline and static cells; returns per-design summaries."""
    return {
        name: repeat_unicast(runner, runner.design(style, 16, workload=workload),
                             workload, seeds, jobs=jobs)
        for name, style in (("baseline", "baseline"), ("static", "static"))
    }
