"""Multi-seed repetition: are the reported numbers stable?

The paper reports single long runs (1M cycles); this reproduction uses
shorter windows, so the harness provides explicit repetition support: run a
(design, workload) cell across several traffic seeds and summarize with
mean, standard deviation, and coefficient of variation.  The A6 bench uses
this to show the normalized comparisons are seed-stable at the default
window lengths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.architectures import DesignPoint
from repro.experiments.runner import ExperimentRunner
from repro.noc.simulator import Simulator
from repro.traffic import ProbabilisticTraffic


@dataclass(frozen=True)
class RepeatedMeasure:
    """Summary statistics of one metric over repeated runs."""

    values: tuple[float, ...]

    @property
    def mean(self) -> float:
        """Arithmetic mean of the repeated values."""
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (0 for a single value)."""
        if len(self.values) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((v - mu) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        mu = self.mean
        return self.std / mu if mu else float("nan")

    def confidence_halfwidth(self, t_value: float = 2.78) -> float:
        """~95% CI half-width (default t for 4 degrees of freedom)."""
        return t_value * self.std / math.sqrt(len(self.values))


@dataclass(frozen=True)
class RepeatedRun:
    """Latency and power over repeated seeds for one cell."""

    design: str
    workload: str
    latency: RepeatedMeasure
    power_w: RepeatedMeasure


def repeat_unicast(
    runner: ExperimentRunner,
    design: DesignPoint,
    workload: str,
    seeds: tuple[int, ...] = (5, 17, 29, 41, 53),
) -> RepeatedRun:
    """Run one unicast cell across several traffic seeds."""
    latencies, powers = [], []
    for seed in seeds:
        network = design.new_network()
        source = ProbabilisticTraffic(
            runner.topology, runner.pattern(workload), runner.rate(workload),
            seed=seed,
        )
        stats = Simulator(network, [source], runner.config.sim).run()
        latencies.append(stats.avg_packet_latency)
        powers.append(runner.power_model.power(design, stats).total_w)
    return RepeatedRun(
        design=design.name,
        workload=workload,
        latency=RepeatedMeasure(tuple(latencies)),
        power_w=RepeatedMeasure(tuple(powers)),
    )


def seed_stability(
    runner: ExperimentRunner,
    workload: str = "uniform",
    seeds: tuple[int, ...] = (5, 17, 29),
) -> dict[str, RepeatedRun]:
    """Repeat the baseline and static cells; returns per-design summaries."""
    return {
        name: repeat_unicast(runner, runner.design(style, 16, workload=workload),
                             workload, seeds)
        for name, style in (("baseline", "baseline"), ("static", "static"))
    }
