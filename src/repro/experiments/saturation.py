"""Saturation-throughput measurement.

The standard NoC acceptance metric the load-latency curves (E1) imply:
the highest injection rate a design sustains before average latency blows
past a multiple of its zero-load value (or deliveries stop keeping up).
Found by bisection on the injection rate; used by the E1b bench to show
RF-I shortcuts moving the saturation point outward, and adaptive routing
extending it further.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DesignPoint
from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class SaturationResult:
    """Outcome of one saturation search."""

    design: str
    workload: str
    zero_load_latency: float
    saturation_rate: float          # messages per component per cycle
    latency_at_saturation: float


def _probe_sim(runner: ExperimentRunner):
    """Trimmed windows for saturation probing.

    A saturated network reveals itself quickly (latency blows up, the
    delivery ratio drops); full-length drains on saturated probes would
    dominate the bisection's runtime for no extra information.
    """
    import dataclasses

    sim = runner.config.sim
    measure = min(sim.measure_cycles, 800)
    return dataclasses.replace(
        sim, measure_cycles=measure, drain_cycles=3 * measure
    )


def _latency_at(
    runner: ExperimentRunner, design: DesignPoint, workload: str, rate: float
) -> tuple[float, float]:
    stats = runner.probe_unicast(design, workload, rate, sim=_probe_sim(runner))
    return stats.avg_packet_latency, stats.delivery_ratio


def find_saturation(
    runner: ExperimentRunner,
    design: DesignPoint,
    workload: str = "uniform",
    latency_factor: float = 2.0,
    rate_hi: float = 0.30,
    tolerance: float = 0.005,
) -> SaturationResult:
    """Bisect the injection rate to the saturation point.

    A rate is *sustained* when average latency stays under
    ``latency_factor x`` the zero-load latency and at least 95% of window
    packets are delivered within the drain budget.
    """
    zero_load, _ = _latency_at(runner, design, workload, 0.001)
    threshold = latency_factor * zero_load

    def sustained(rate: float) -> tuple[bool, float]:
        latency, delivery = _latency_at(runner, design, workload, rate)
        return (latency <= threshold and delivery >= 0.95), latency

    lo, hi = 0.001, rate_hi
    ok_hi, _ = sustained(hi)
    if ok_hi:
        # Never saturates in the searched range; report the range edge.
        latency, _ = _latency_at(runner, design, workload, hi)
        return SaturationResult(design.name, workload, zero_load, hi, latency)
    last_latency = zero_load
    while hi - lo > tolerance:
        mid = (lo + hi) / 2
        ok, latency = sustained(mid)
        if ok:
            lo = mid
            last_latency = latency
        else:
            hi = mid
    return SaturationResult(design.name, workload, zero_load, lo, last_latency)
