"""Seeded consistent-hash ring with virtual nodes.

The front-door router places every job digest on a ring of shards.  Two
properties matter operationally:

* **Determinism** — placement is a pure function of (seed, shard names,
  key): two router processes built with the same seed and shard set
  agree on every key, across restarts.  Warm-cache locality therefore
  survives a router restart: the same digest keeps landing on the shard
  whose private store already holds it.
* **Minimal disruption** — each shard owns many *virtual nodes* (ring
  points), so removing one shard remaps only the keys it owned — each
  to the next shard clockwise from its position (its ring successor) —
  while every other key stays put.  Restoring the shard returns exactly
  its original keys.

The ring itself is availability-agnostic: it always places over the full
membership, and :meth:`HashRing.shard_for` walks successors past any
shard the caller says is unavailable.  Who is available is the router's
business (health state), not the ring's.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional, Sequence

#: Virtual nodes per shard; enough for <10% placement imbalance at small
#: shard counts without making membership changes expensive.
DEFAULT_VNODES = 64


def _position(text: str) -> int:
    """A stable 64-bit ring position for a label or key."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing of string keys onto named shards."""

    def __init__(self, shards: Iterable[str], *, vnodes: int = DEFAULT_VNODES,
                 seed: int = 0):
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        if self.vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self._shards: list[str] = []
        self._points: list[int] = []       # sorted vnode positions
        self._owners: list[str] = []       # shard owning each position
        for shard in shards:
            self.add(shard)
        if not self._shards:
            raise ValueError("a ring needs at least one shard")

    @property
    def shards(self) -> tuple[str, ...]:
        """Current membership, in insertion order."""
        return tuple(self._shards)

    def add(self, shard: str) -> None:
        """Add a shard's virtual nodes to the ring (idempotent)."""
        if shard in self._shards:
            return
        self._shards.append(shard)
        for vnode in range(self.vnodes):
            point = _position(f"{self.seed}|{shard}|{vnode}")
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard)

    def remove(self, shard: str) -> None:
        """Remove a shard's virtual nodes (its keys remap to successors)."""
        if shard not in self._shards:
            return
        self._shards.remove(shard)
        keep = [i for i, owner in enumerate(self._owners) if owner != shard]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def successors(self, key: str) -> Iterable[str]:
        """Distinct shards in ring order starting at ``key``'s position.

        The first yielded shard is the key's *owner*; the rest are the
        failover order a router walks when shards are unavailable.
        """
        if not self._points:
            return
        start = bisect.bisect(self._points, _position(key)) % len(self._points)
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner not in seen:
                seen.add(owner)
                yield owner

    def owner(self, key: str) -> str:
        """The shard the key maps to when every shard is available."""
        return next(iter(self.successors(key)))

    def shard_for(self, key: str,
                  available: Optional[Sequence[str]] = None) -> Optional[str]:
        """The first available shard in ``key``'s successor order.

        ``available=None`` means every member is available.  Returns None
        when no available shard exists — the router's 503 condition.
        """
        if available is None:
            return self.owner(key)
        usable = set(available)
        for shard in self.successors(key):
            if shard in usable:
                return shard
        return None

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = {shard: 0 for shard in self._shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def describe(self) -> dict:
        """JSON-safe ring description for the ``/cluster`` endpoint."""
        return {
            "seed": self.seed,
            "vnodes": self.vnodes,
            "shards": list(self._shards),
            "points": len(self._points),
        }

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def __len__(self) -> int:
        return len(self._shards)
