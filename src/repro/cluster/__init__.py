"""Sharded serve cluster: a consistent-hash front door over N workers.

``repro.cluster`` scales the serving tier *out* the way the paper scales
aggregate NoC bandwidth — by overlaying parallel resources over one
substrate instead of fattening a single channel.  Three layers (see
``docs/serving.md`` for the operator's view):

* :mod:`repro.cluster.ring` — a seeded consistent-hash ring with virtual
  nodes.  Job digests map deterministically onto shards, so request
  coalescing and warm-cache locality survive sharding: every request
  for one cell lands on the same worker, whose scheduler coalesces it.
  When a shard drains or dies its keys remap to ring successors; every
  other key stays put.
* :mod:`repro.cluster.router` — the asyncio HTTP front door.  It
  consistent-hashes ``/v1/simulate`` bodies onto shards and proxies
  over pooled keep-alive connections, fans ``/v1/sweep`` grids out
  cell-by-cell to each cell's owner (streaming NDJSON progress exactly
  like a worker), aggregates ``/healthz`` and ``/metrics`` across
  shards, serves a ``/cluster`` status endpoint, and answers
  503 + ``Retry-After`` only when *no* shard can take a key.
* :mod:`repro.cluster.supervisor` — ``repro serve --workers N``.
  Spawns worker processes on successive ports (per-shard result-store
  directories over one shared read-through tier), monitors
  ``/healthz``, marks unhealthy shards draining (ring removal;
  in-flight requests settle), and restarts dead workers with backoff.

Quick start (in-process, ephemeral ports)::

    from repro.cluster import Cluster
    from repro.serve import ServeClient

    cluster = Cluster(workers=2, fast=True)
    port = cluster.start()                  # router port
    client = ServeClient(port=port)
    client.simulate(design="baseline", workload="uniform")
    cluster.stop()

Or from the shell: ``repro serve --workers 4``.
"""

from repro.cluster.ring import HashRing
from repro.cluster.router import (
    ClusterRouter, RouterThread, Shard, ShardProxyError, SHARD_STATES,
)
from repro.cluster.supervisor import Cluster, WorkerSupervisor, WorkerHandle

__all__ = [
    "Cluster",
    "ClusterRouter",
    "HashRing",
    "RouterThread",
    "SHARD_STATES",
    "Shard",
    "ShardProxyError",
    "WorkerHandle",
    "WorkerSupervisor",
]
