"""Worker lifecycle for the sharded serve tier: spawn, probe, restart.

Three pieces, smallest first:

* :class:`WorkerHandle` — one serve worker the cluster owns.  Two
  backings share one interface: a **subprocess** running ``repro serve``
  (what ``repro serve --workers N`` uses — real process isolation, can
  be SIGKILLed and restarted), or an **in-process**
  :class:`~repro.serve.http.ServerThread` (what tests and the benchmark
  harness use — ephemeral ports, no spawn latency).
* :class:`WorkerSupervisor` — a monitor thread that probes every
  worker's ``/healthz`` each poll interval and drives the router's
  shard states: healthy → ``up``; probe failed or self-reported
  draining → ``draining`` (new keys remap to ring successors while
  anything in flight settles); process exited → ``down`` + restart with
  exponential backoff.  All router-state changes cross into the router's
  event loop via
  :meth:`~repro.cluster.router.ClusterRouter.set_shard_state_threadsafe`.
* :class:`Cluster` — the composition ``repro serve --workers N`` runs:
  N workers on successive ports, each with a private result-store
  directory over one **shared read-through tier** (a warm result
  computed by any shard serves every shard), one
  :class:`~repro.cluster.router.ClusterRouter` front door, one
  supervisor.  ``start()`` returns the router's port.

Worker stores live under one cache root::

    <root>/shared/    read-through tier every shard mirrors into
    <root>/shard-0/   shard-0's private store (its ring keys stay warm)
    <root>/shard-1/   ...
    <root>/shard-0.log  subprocess worker stdout+stderr (process mode)
"""

from __future__ import annotations

import http.client
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Optional

from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG, ExperimentConfig
from repro.serve.http import ServerThread
from repro.serve.service import SimulationService
from repro.cluster.ring import DEFAULT_VNODES
from repro.cluster.router import ClusterRouter, RouterThread, Shard


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (bind :0, read, release)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def probe_health(host: str, port: int,
                 timeout: float = 2.0) -> Optional[dict]:
    """One blocking ``GET /healthz``; None when unreachable/unparseable."""
    try:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            if response.status != 200:
                return None
            return json.loads(response.read())
        finally:
            conn.close()
    except (OSError, ValueError, http.client.HTTPException):
        return None


class WorkerHandle:
    """One serve worker: a subprocess (``argv``) or a thread
    (``service_factory``), exactly one of which must be given."""

    def __init__(self, shard_id: str, *, host: str = "127.0.0.1",
                 port: int = 0, argv: Optional[list[str]] = None,
                 service_factory: Optional[
                     Callable[[], SimulationService]] = None,
                 log_path: Optional[Path] = None,
                 env: Optional[dict] = None):
        if (argv is None) == (service_factory is None):
            raise ValueError("give exactly one of argv / service_factory")
        if argv is not None and port == 0:
            raise ValueError("subprocess workers need an explicit port")
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.argv = argv
        self.service_factory = service_factory
        self.log_path = Path(log_path) if log_path else None
        self.env = env
        self.restarts = 0
        self._proc: Optional[subprocess.Popen] = None
        self._thread: Optional[ServerThread] = None

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def start(self) -> int:
        """Start (or restart) the worker; returns its bound port."""
        if self.argv is not None:
            # A serve worker runs a ProcessPoolExecutor whose children
            # inherit its listening socket; if any survived the previous
            # incarnation they hold the port (EADDRINUSE on restart) and
            # half-open connections.  Each worker therefore gets its own
            # process group (start_new_session) and a restart sweeps the
            # old group first.
            self._sweep_group()
            log = (open(self.log_path, "ab")
                   if self.log_path is not None else subprocess.DEVNULL)
            try:
                self._proc = subprocess.Popen(
                    self.argv, stdout=log, stderr=subprocess.STDOUT,
                    env=self.env, start_new_session=True,
                )
            finally:
                if log is not subprocess.DEVNULL:
                    log.close()
        else:
            # Restarts rebind the original ephemeral port so the
            # router's shard address stays valid.
            self._thread = ServerThread(self.service_factory(),
                                        host=self.host, port=self.port)
            self.port = self._thread.start()
        return self.port

    def alive(self) -> bool:
        if self._proc is not None:
            return self._proc.poll() is None
        if self._thread is not None:
            thread = self._thread._thread
            return thread is not None and thread.is_alive()
        return False

    def _sweep_group(self) -> None:
        """SIGKILL everything left in the worker's process group."""
        if self._proc is None:
            return
        try:
            os.killpg(self._proc.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            pass

    def kill(self) -> None:
        """SIGKILL the worker (failure injection in tests/benchmarks)."""
        if self._proc is not None:
            self._sweep_group()
            self._proc.kill()
            self._proc.wait(timeout=10)
        elif self._thread is not None:
            self._thread.stop()

    def stop(self) -> None:
        """Graceful shutdown (terminate, then kill after a grace period)."""
        if self._proc is not None:
            if self._proc.poll() is None:
                self._proc.terminate()
                try:
                    self._proc.wait(timeout=10)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    self._proc.kill()
                    self._proc.wait(timeout=10)
            self._sweep_group()
            self._proc = None
        if self._thread is not None:
            self._thread.stop()
            self._thread = None

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "host": self.host,
            "port": self.port,
            "mode": "process" if self.argv is not None else "thread",
            "pid": self.pid,
            "alive": self.alive(),
            "restarts": self.restarts,
        }


class WorkerSupervisor:
    """Probe workers, drive router shard states, restart the dead."""

    def __init__(self, workers: list[WorkerHandle], *,
                 router: Optional[ClusterRouter] = None,
                 poll_interval_s: float = 0.5,
                 probe_timeout_s: float = 2.0,
                 restart_backoff_s: float = 0.5,
                 max_restart_backoff_s: float = 10.0):
        self.workers = {worker.shard_id: worker for worker in workers}
        self.router = router
        self.poll_interval_s = poll_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.restart_backoff_s = restart_backoff_s
        self.max_restart_backoff_s = max_restart_backoff_s
        self._backoff = {sid: restart_backoff_s for sid in self.workers}
        self._next_restart = {sid: 0.0 for sid in self.workers}
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def attach(self, router: ClusterRouter) -> None:
        self.router = router
        router.status_extra = self.status

    # -- lifecycle ----------------------------------------------------------

    def start_workers(self, ready_timeout_s: float = 60.0) -> None:
        """Start every worker and wait until each answers ``/healthz``."""
        for worker in self.workers.values():
            worker.start()
        deadline = time.monotonic() + ready_timeout_s
        pending = set(self.workers)
        while pending:
            for sid in sorted(pending):
                worker = self.workers[sid]
                if not worker.alive():
                    raise RuntimeError(
                        f"worker {sid} exited during startup"
                        + (f" (log: {worker.log_path})"
                           if worker.log_path else ""))
                if probe_health(worker.host, worker.port,
                                self.probe_timeout_s) is not None:
                    pending.discard(sid)
            if pending and time.monotonic() > deadline:
                raise RuntimeError(
                    f"workers {sorted(pending)} not healthy after "
                    f"{ready_timeout_s:.0f}s")
            if pending:
                time.sleep(0.05)

    def start_monitor(self) -> None:
        self._thread = threading.Thread(target=self._monitor, daemon=True,
                                        name="repro-cluster-supervisor")
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        for worker in self.workers.values():
            worker.stop()

    # -- monitoring ---------------------------------------------------------

    def _route_state(self, shard_id: str, state: str,
                     reason: Optional[str] = None) -> None:
        if self.router is not None:
            self.router.set_shard_state_threadsafe(shard_id, state, reason)

    def poll_once(self) -> None:
        """One supervision pass (the monitor loop's body; callable in
        tests without the thread)."""
        now = time.monotonic()
        for sid, worker in self.workers.items():
            if not worker.alive():
                self._route_state(sid, "down", "worker process exited")
                if now >= self._next_restart[sid]:
                    worker.restarts += 1
                    backoff = self._backoff[sid]
                    self._next_restart[sid] = now + backoff
                    self._backoff[sid] = min(backoff * 2,
                                             self.max_restart_backoff_s)
                    try:
                        worker.start()
                    except (OSError, RuntimeError):  # pragma: no cover
                        pass      # retried after the backoff window
                continue
            health = probe_health(worker.host, worker.port,
                                  self.probe_timeout_s)
            if health is None:
                # Alive but not answering: starting up or wedged.  Stop
                # routing new keys here; in-flight work settles on its
                # own connections.
                self._route_state(sid, "draining", "health probe failed")
            elif health.get("status") == "draining":
                self._route_state(sid, "draining", "worker draining")
            else:
                self._route_state(sid, "up")
                self._backoff[sid] = self.restart_backoff_s

    def _monitor(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            self.poll_once()

    def status(self) -> dict:
        """JSON-safe supervision snapshot (merged into ``/cluster``)."""
        return {
            "poll_interval_s": self.poll_interval_s,
            "workers": {sid: worker.as_dict()
                        for sid, worker in self.workers.items()},
            "restarts": sum(w.restarts for w in self.workers.values()),
        }


class Cluster:
    """N serve workers + consistent-hash router + supervisor, as one unit.

    ``processes=False`` (default) hosts workers as in-process server
    threads — what tests and benchmarks want.  ``processes=True`` spawns
    each worker as a real ``repro serve`` subprocess — what the CLI
    does, and what makes SIGKILL-and-restart supervision meaningful.
    ``cache_root=None`` uses a private temporary directory, removed on
    :meth:`stop`; name a directory to keep the caches warm across runs.
    """

    def __init__(self, workers: int = 2, *,
                 fast: bool = False,
                 config: Optional[ExperimentConfig] = None,
                 processes: bool = False,
                 host: str = "127.0.0.1",
                 router_port: int = 0,
                 worker_ports: Optional[list[int]] = None,
                 cache_root: Optional[str] = None,
                 queue_limit: int = 16,
                 concurrency: int = 2,
                 vnodes: int = DEFAULT_VNODES,
                 ring_seed: int = 0,
                 poll_interval_s: float = 0.5,
                 proxy_timeout_s: float = 600.0,
                 extra_worker_args: Optional[list[str]] = None):
        if workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if worker_ports is not None and len(worker_ports) != workers:
            raise ValueError("worker_ports must name one port per worker")
        self.num_workers = workers
        self.fast = fast
        self.config = config or (FAST_CONFIG if fast else DEFAULT_CONFIG)
        self.processes = processes
        self.host = host
        self.router_port = router_port
        self.worker_ports = worker_ports
        self.queue_limit = queue_limit
        self.concurrency = concurrency
        self.vnodes = vnodes
        self.ring_seed = ring_seed
        self.poll_interval_s = poll_interval_s
        self.proxy_timeout_s = proxy_timeout_s
        self.extra_worker_args = list(extra_worker_args or [])
        self._owns_cache_root = cache_root is None
        self.cache_root = Path(cache_root) if cache_root else None
        self.workers: list[WorkerHandle] = []
        self.supervisor: Optional[WorkerSupervisor] = None
        self.router: Optional[ClusterRouter] = None
        self.router_thread: Optional[RouterThread] = None

    # -- worker construction ------------------------------------------------

    def _worker_argv(self, shard_id: str, port: int,
                     root: Path) -> list[str]:
        argv = [sys.executable, "-m", "repro", "serve",
                "--host", self.host, "--port", str(port),
                "--shard-id", shard_id,
                "--cache", str(root / shard_id),
                "--shared-cache", str(root / "shared"),
                "--queue-limit", str(self.queue_limit),
                "--jobs", str(self.concurrency)]
        if self.fast:
            argv.append("--fast")
        argv.extend(self.extra_worker_args)
        return argv

    def _worker_env(self) -> dict:
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (src + os.pathsep + existing
                                 if existing else src)
        return env

    def _make_worker(self, index: int, root: Path) -> WorkerHandle:
        shard_id = f"shard-{index}"
        if self.processes:
            port = (self.worker_ports[index] if self.worker_ports
                    else free_port(self.host))
            return WorkerHandle(
                shard_id, host=self.host, port=port,
                argv=self._worker_argv(shard_id, port, root),
                log_path=root / f"{shard_id}.log",
                env=self._worker_env(),
            )
        from repro.exec.store import ResultStore

        config = self.config
        shared_dir = root / "shared"
        queue_limit, concurrency = self.queue_limit, self.concurrency

        def factory(shard_id=shard_id) -> SimulationService:
            return SimulationService(
                config=config,
                store=ResultStore(root / shard_id, shared=shared_dir),
                queue_limit=queue_limit,
                concurrency=concurrency,
                shard_id=shard_id,
            )

        port = self.worker_ports[index] if self.worker_ports else 0
        return WorkerHandle(shard_id, host=self.host, port=port,
                            service_factory=factory)

    # -- lifecycle ----------------------------------------------------------

    def start(self, supervise: bool = True) -> int:
        """Bring the whole tier up; returns the router's port."""
        if self.cache_root is None:
            self.cache_root = Path(
                tempfile.mkdtemp(prefix="repro-cluster-"))
        root = self.cache_root
        root.mkdir(parents=True, exist_ok=True)
        (root / "shared").mkdir(exist_ok=True)
        self.workers = [self._make_worker(i, root)
                        for i in range(self.num_workers)]
        self.supervisor = WorkerSupervisor(
            self.workers, poll_interval_s=self.poll_interval_s)
        self.supervisor.start_workers()
        self.router = ClusterRouter(
            [Shard(w.shard_id, w.host, w.port) for w in self.workers],
            config=self.config,
            vnodes=self.vnodes,
            ring_seed=self.ring_seed,
            proxy_timeout_s=self.proxy_timeout_s,
        )
        self.supervisor.attach(self.router)
        self.router_thread = RouterThread(self.router, host=self.host,
                                          port=self.router_port)
        self.router_port = self.router_thread.start()
        if supervise:
            self.supervisor.start_monitor()
        return self.router_port

    def stop(self) -> None:
        if self.supervisor is not None:
            self.supervisor.stop()
            self.supervisor = None
        if self.router_thread is not None:
            self.router_thread.stop()
            self.router_thread = None
        self.router = None
        self.workers = []
        if self._owns_cache_root and self.cache_root is not None:
            shutil.rmtree(self.cache_root, ignore_errors=True)
            self.cache_root = None

    def __enter__(self) -> "Cluster":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
