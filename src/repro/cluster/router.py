"""The cluster front door: consistent-hash routing over serve workers.

:class:`ClusterRouter` is an asyncio HTTP process that looks exactly
like one big ``repro serve`` worker to clients — same routes, same
envelopes — but settles nothing itself.  Every ``/v1/simulate`` body is
validated and addressed with the *worker's own* digest scheme
(:func:`~repro.serve.protocol.canonical_digest`), placed on a seeded
:class:`~repro.cluster.ring.HashRing`, and proxied to the owning shard
over a pooled keep-alive connection.  That digest affinity is the whole
point: every request for one cell lands on the same worker, whose
scheduler coalesces duplicates and whose private result store stays warm
for that key.

Routing semantics, in order of preference:

* the key's ring **owner**, when its shard is ``up``;
* otherwise the first ``up`` **ring successor** (the key is *rebalanced*
  — counted in ``cluster_rebalanced_keys`` and flagged in the response);
* otherwise **503 + Retry-After**: nothing can take the key right now.

A worker's 429 is passed through, not failed over — shedding means the
owner is overloaded, and moving the key elsewhere would trade a warm
queue for a cold compute.  A transport failure (connect refused, reset,
proxy timeout) marks the shard ``down`` and walks to the next successor;
the supervisor's health probe restores the shard when it recovers.

``/v1/sweep`` grids are expanded *at the router* and fanned out cell by
cell, each cell to its own owner, preserving per-digest locality that a
whole-grid proxy to one worker would destroy.  Progress streams as the
same NDJSON job protocol workers speak.  ``/healthz`` and ``/metrics``
aggregate every shard (totals reconcile with the per-shard sums), and
``/cluster`` reports ring membership, shard states, and counters.
"""

from __future__ import annotations

import asyncio
import json
import secrets
import time
from typing import AsyncIterator, Callable, Iterable, Optional, Union

from repro.experiments.config import DEFAULT_CONFIG, FAST_CONFIG, ExperimentConfig
from repro.obs.metrics import MetricsRegistry
from repro.params import DEFAULT_PARAMS, ArchitectureParams
from repro.serve.http import ServeServer, ServerThread, _encode_response
from repro.serve.protocol import (
    RequestError, canonical_digest, envelope, error_envelope, parse_simulate,
    parse_sweep, spec_fields,
)
from repro.serve.service import SweepJob
from repro.cluster.ring import DEFAULT_VNODES, HashRing

#: Shard lifecycle states the router routes by: ``up`` takes new keys,
#: ``draining`` finishes what it has but receives nothing new, ``down``
#: is unreachable (keys remap to ring successors until it returns).
SHARD_STATES = ("up", "draining", "down")

#: Gauge encoding of shard state (``cluster_shard_state{shard=...}``).
STATE_CODES = {"up": 2, "draining": 1, "down": 0}

#: ``Retry-After`` seconds when no shard can take a key.
UNROUTABLE_RETRY_S = 2


class ShardProxyError(Exception):
    """A shard could not be reached or broke mid-exchange."""


class Shard:
    """One serve worker as the router sees it: address, state, pool."""

    #: Idle keep-alive connections retained per shard.
    POOL_LIMIT = 8

    def __init__(self, shard_id: str, host: str = "127.0.0.1",
                 port: int = 0):
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.state = "up"
        self.last_error: Optional[str] = None
        #: Sockets opened to this shard (pool reuse keeps this small).
        self.connections_opened = 0
        self._pool: list[tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    def set_state(self, state: str, reason: Optional[str] = None) -> None:
        if state not in SHARD_STATES:
            raise ValueError(f"unknown shard state {state!r}; "
                             f"one of {list(SHARD_STATES)}")
        self.state = state
        if reason is not None:
            self.last_error = reason

    def as_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "host": self.host,
            "port": self.port,
            "state": self.state,
            "connections_opened": self.connections_opened,
            "pooled": len(self._pool),
            "last_error": self.last_error,
        }

    # -- HTTP plumbing ------------------------------------------------------

    async def request(self, method: str, path: str,
                      body: Optional[bytes] = None,
                      timeout: float = 600.0) -> tuple[int, dict, bytes]:
        """One proxied exchange; returns (status, headers, raw body).

        Reuses a pooled keep-alive connection when one is idle.  A
        pooled socket can be stale (worker restarted while idle), so a
        failure on a *pooled* connection retries once on a fresh one;
        a fresh-connection failure raises :class:`ShardProxyError`.
        """
        while True:
            pooled = bool(self._pool)
            if pooled:
                reader, writer = self._pool.pop()
            else:
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        timeout=min(timeout, 10.0),
                    )
                except OSError as exc:
                    raise ShardProxyError(
                        f"shard {self.shard_id} at {self.host}:{self.port} "
                        f"unreachable: {exc}"
                    ) from exc
                self.connections_opened += 1
            try:
                status, headers, raw = await asyncio.wait_for(
                    self._roundtrip(reader, writer, method, path, body),
                    timeout=timeout,
                )
            except (OSError, ValueError, asyncio.IncompleteReadError) as exc:
                self._close(writer)
                if pooled:
                    continue      # stale pooled socket; retry fresh once
                raise ShardProxyError(
                    f"shard {self.shard_id} at {self.host}:{self.port} "
                    f"broke mid-exchange: {exc}"
                ) from exc
            if (headers.get("connection", "").lower() == "keep-alive"
                    and len(self._pool) < self.POOL_LIMIT):
                self._pool.append((reader, writer))
            else:
                self._close(writer)
            return status, headers, raw

    async def _roundtrip(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter, method: str,
                         path: str, body: Optional[bytes]
                         ) -> tuple[int, dict, bytes]:
        payload = body or b""
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: keep-alive\r\n\r\n")
        writer.write(head.encode("ascii") + payload)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionResetError("shard closed the connection")
        status = int(status_line.decode("latin-1").split(None, 2)[1])
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length > 0 else b""
        return status, headers, raw

    @staticmethod
    def _close(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except OSError:  # pragma: no cover - already dead
            pass

    def close_pool(self) -> None:
        """Drop every idle connection (state change, shutdown)."""
        while self._pool:
            _, writer = self._pool.pop()
            self._close(writer)


ShardSpec = Union["Shard", tuple[str, str, int]]


class ClusterRouter:
    """Socket-free core of the front door (hosted by :class:`RouterServer`).

    ``shards`` may be :class:`Shard` objects, ``(shard_id, host, port)``
    tuples, or a ``{shard_id: port}`` mapping on localhost.  The router
    must be built with the *same* config family as its workers (``fast``
    or explicit ``config``) so its digests match theirs.
    """

    def __init__(
        self,
        shards: Union[dict, Iterable[ShardSpec]],
        *,
        config: Optional[ExperimentConfig] = None,
        params: ArchitectureParams = DEFAULT_PARAMS,
        fast: bool = False,
        vnodes: int = DEFAULT_VNODES,
        ring_seed: int = 0,
        registry: Optional[MetricsRegistry] = None,
        proxy_timeout_s: float = 600.0,
    ):
        self.config = config or (FAST_CONFIG if fast else DEFAULT_CONFIG)
        self.params = params
        self.proxy_timeout_s = proxy_timeout_s
        self.registry = registry if registry is not None else MetricsRegistry()
        self.shards: dict[str, Shard] = {}
        for shard in self._coerce(shards):
            self.shards[shard.shard_id] = shard
        self.ring = HashRing(self.shards, vnodes=vnodes, seed=ring_seed)
        self.jobs: dict[str, SweepJob] = {}
        self._job_seq = 0
        self._start_monotonic = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        #: Optional supervisor hook: a callable returning a JSON-safe
        #: dict merged into the ``/cluster`` payload (restart counts...).
        self.status_extra: Optional[Callable[[], dict]] = None
        for shard in self.shards.values():
            self._state_gauge(shard)

    @staticmethod
    def _coerce(shards) -> Iterable[Shard]:
        if isinstance(shards, dict):
            return [Shard(sid, "127.0.0.1", port)
                    for sid, port in shards.items()]
        return [shard if isinstance(shard, Shard) else Shard(*shard)
                for shard in shards]

    # -- lifecycle ----------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()

    async def stop(self) -> None:
        for job in self.jobs.values():
            if job.task is not None and not job.task.done():
                job.task.cancel()
        for shard in self.shards.values():
            shard.close_pool()

    # -- shard state --------------------------------------------------------

    def _state_gauge(self, shard: Shard) -> None:
        self.registry.gauge("cluster_shard_state",
                            shard=shard.shard_id).set(
                                STATE_CODES[shard.state])

    def set_shard_state(self, shard_id: str, state: str,
                        reason: Optional[str] = None) -> None:
        """Move one shard between up/draining/down (router-loop context)."""
        shard = self.shards[shard_id]
        if shard.state == state:
            return
        shard.set_state(state, reason)
        if state != "up":
            shard.close_pool()
        self._state_gauge(shard)

    def set_shard_state_threadsafe(self, shard_id: str, state: str,
                                   reason: Optional[str] = None) -> None:
        """Same, callable from a supervisor thread outside the loop."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(
                self.set_shard_state, shard_id, state, reason)
        else:  # pragma: no cover - router not started yet
            self.set_shard_state(shard_id, state, reason)

    def available(self) -> list[str]:
        return [sid for sid, shard in self.shards.items()
                if shard.state == "up"]

    def _mark_down(self, shard_id: str, reason: str) -> None:
        self.registry.counter("cluster_proxy_errors", shard=shard_id).inc()
        self.set_shard_state(shard_id, "down", reason)

    # -- simulate proxy -----------------------------------------------------

    def place(self, digest: str) -> tuple[str, Optional[str]]:
        """(full-ring owner, serving shard or None) for one digest."""
        return (self.ring.owner(digest),
                self.ring.shard_for(digest, self.available()))

    async def simulate(self, payload: dict) -> tuple[int, dict, dict]:
        """Proxy one cell to its shard; same contract as the service."""
        try:
            spec = parse_simulate(payload)
        except RequestError as exc:
            self.registry.counter("cluster_rejected").inc()
            return 400, error_envelope(str(exc)), {}
        _, digest = canonical_digest(spec, self.config, self.params)
        return await self._proxy_cell(payload, digest)

    async def _proxy_cell(self, payload: dict,
                          digest: str) -> tuple[int, dict, dict]:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        owner = self.ring.owner(digest)
        for shard_id in self.ring.successors(digest):
            shard = self.shards[shard_id]
            if shard.state != "up":
                continue
            try:
                status, headers, raw = await shard.request(
                    "POST", "/v1/simulate", body,
                    timeout=self.proxy_timeout_s)
            except ShardProxyError as exc:
                self._mark_down(shard_id, str(exc))
                continue
            try:
                out = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                self._mark_down(shard_id, "non-JSON response")
                continue
            self.registry.counter("cluster_requests", shard=shard_id).inc()
            out["shard"] = shard_id
            if shard_id != owner:
                self.registry.counter("cluster_rebalanced_keys").inc()
                out["rebalanced_from"] = owner
            extra = {}
            if "retry-after" in headers:
                extra["Retry-After"] = headers["retry-after"]
            return status, out, extra
        self.registry.counter("cluster_unroutable").inc()
        return (503,
                error_envelope("no shard available for this key",
                               digest=digest,
                               retry_after_s=UNROUTABLE_RETRY_S),
                {"Retry-After": str(UNROUTABLE_RETRY_S)})

    # -- sweep fan-out ------------------------------------------------------

    async def sweep(self, payload: dict) -> tuple[int, dict, dict]:
        """Expand a grid here and fan cells out to their ring owners."""
        try:
            specs = parse_sweep(payload)
        except RequestError as exc:
            self.registry.counter("cluster_rejected").inc()
            return 400, error_envelope(str(exc)), {}
        digests = [canonical_digest(s, self.config, self.params)[1]
                   for s in specs]
        self._job_seq += 1
        job_id = f"cjob-{self._job_seq:04d}-{secrets.token_hex(4)}"
        job = SweepJob(job_id=job_id, specs=specs)
        self.jobs[job_id] = job
        job.task = asyncio.create_task(
            self._run_sweep_job(job, digests), name=f"cluster-{job_id}")
        return 202, envelope(status="accepted", job_id=job_id,
                             cells=len(specs),
                             spread=self.ring.spread(digests)), {}

    async def _job_event(self, job: SweepJob, event: dict) -> None:
        async with job.cond:
            job.events.append(event)
            job.cond.notify_all()

    async def _finish_job(self, job: SweepJob, status: str,
                          summary: dict) -> None:
        async with job.cond:
            job.status = status
            job.summary = summary
            job.events.append(
                {"event": "complete", "status": status, "summary": summary}
            )
            job.cond.notify_all()

    async def _run_one_cell(self, job: SweepJob, index: int, digest: str,
                            fields: dict, sem: asyncio.Semaphore,
                            tally: dict, shard_tally: dict) -> None:
        async with sem:
            while True:
                status, out, _ = await self._proxy_cell(fields, digest)
                if status in (429, 503):
                    # The owner is shedding (or momentarily unroutable):
                    # batch cells wait and re-offer, they never drop.
                    hint = out.get("retry_after_s", UNROUTABLE_RETRY_S)
                    await self._job_event(job, {
                        "event": "backoff", "index": index,
                        "retry_after_s": hint,
                    })
                    await asyncio.sleep(min(hint, 5))
                    continue
                if status != 200:
                    raise RuntimeError(
                        f"cell {index} failed on shard "
                        f"{out.get('shard', '?')}: "
                        f"{out.get('error', status)}")
                break
            source = out.get("source", "computed")
            tally[source] = tally.get(source, 0) + 1
            shard = out.get("shard", "?")
            shard_tally[shard] = shard_tally.get(shard, 0) + 1
            await self._job_event(job, {
                "event": "hit" if source == "store" else "done",
                "index": index,
                "source": source,
                "shard": shard,
                "digest": out.get("digest", digest),
                "wall_s": out.get("wall_s"),
                "result": out.get("result"),
            })

    async def _run_sweep_job(self, job: SweepJob,
                             digests: list[str]) -> None:
        sem = asyncio.Semaphore(max(2, 2 * len(self.shards)))
        tally: dict[str, int] = {}
        shard_tally: dict[str, int] = {}
        start = time.perf_counter()
        try:
            await asyncio.gather(*(
                self._run_one_cell(job, i, digests[i],
                                   spec_fields(spec), sem, tally,
                                   shard_tally)
                for i, spec in enumerate(job.specs)
            ))
        except asyncio.CancelledError:
            await self._finish_job(job, "failed", {"error": "cancelled"})
            raise
        except Exception as exc:
            await self._finish_job(job, "failed", {"error": str(exc)})
            return
        await self._finish_job(job, "done", {
            "cells": len(job.specs),
            "wall_s": time.perf_counter() - start,
            "sources": dict(sorted(tally.items())),
            "shards": dict(sorted(shard_tally.items())),
        })

    async def stream_job(
        self, job_id: str,
    ) -> Optional[AsyncIterator[dict]]:
        """Async iterator over a router job's events (None if unknown)."""
        job = self.jobs.get(job_id)
        if job is None:
            return None

        async def _events() -> AsyncIterator[dict]:
            index = 0
            while True:
                async with job.cond:
                    while index >= len(job.events) and job.status == "running":
                        await job.cond.wait()
                    fresh = job.events[index:]
                    index = len(job.events)
                    finished = job.status != "running"
                for event in fresh:
                    yield event
                if finished and index >= len(job.events):
                    return

        return _events()

    # -- aggregation --------------------------------------------------------

    async def _gather(self, path: str,
                      timeout: float = 10.0) -> dict[str, dict]:
        """GET ``path`` from every shard concurrently; errors inline."""
        async def one(shard: Shard) -> dict:
            if shard.state == "down":
                return {"error": f"shard is down: {shard.last_error}"}
            try:
                _, _, raw = await shard.request("GET", path, None,
                                                timeout=timeout)
                return json.loads(raw)
            except (ShardProxyError, json.JSONDecodeError) as exc:
                return {"error": str(exc)}
        shards = list(self.shards.values())
        results = await asyncio.gather(*(one(s) for s in shards))
        return {s.shard_id: r for s, r in zip(shards, results)}

    async def health(self) -> dict:
        """Aggregate ``/healthz``: cluster status + every shard's view."""
        probes = await self._gather("/healthz")
        states = {sid: shard.state for sid, shard in self.shards.items()}
        up = sum(1 for s in states.values() if s == "up")
        status = ("ok" if up == len(states)
                  else "degraded" if up > 0 else "down")
        return envelope(
            status=status,
            role="router",
            uptime_s=time.monotonic() - self._start_monotonic,
            shards={sid: {"state": states[sid], "health": probes[sid]}
                    for sid in states},
            counts={state: sum(1 for s in states.values() if s == state)
                    for state in SHARD_STATES},
            jobs={status_: sum(1 for j in self.jobs.values()
                               if j.status == status_)
                  for status_ in ("running", "done", "failed")},
        )

    async def metrics(self) -> dict:
        """Aggregate ``/metrics``: totals reconcile with per-shard sums."""
        shard_metrics = await self._gather("/metrics")
        requests_total: dict[str, float] = {}
        settled_total: dict[str, float] = {}
        recon_total = {"requests": 0, "rejected": 0, "sweep_cells": 0,
                       "accounted": 0}
        balanced = True
        reachable = 0
        for payload in shard_metrics.values():
            if "error" in payload:
                balanced = False    # can't prove totals without every shard
                continue
            reachable += 1
            for endpoint, count in payload.get("requests", {}).items():
                requests_total[endpoint] = (
                    requests_total.get(endpoint, 0) + count)
            recon = payload.get("reconciliation", {})
            for source, count in recon.get("settled", {}).items():
                settled_total[source] = settled_total.get(source, 0) + count
            for key in recon_total:
                recon_total[key] += recon.get(key, 0)
            balanced = balanced and bool(recon.get("balanced"))
        expected = (recon_total["requests"] - recon_total["rejected"]
                    + recon_total["sweep_cells"])
        reconciliation = {
            **recon_total,
            "settled": dict(sorted(settled_total.items())),
            "balanced": balanced and recon_total["accounted"] == expected,
            "shards_reporting": reachable,
        }
        return envelope(
            status="ok",
            role="router",
            cluster=self.counters(),
            totals={"requests": dict(sorted(requests_total.items())),
                    "settled": dict(sorted(settled_total.items()))},
            reconciliation=reconciliation,
            shards=shard_metrics,
            snapshot=self.registry.snapshot(),
        )

    def counters(self) -> dict:
        """The router's own counters, JSON-safe (``/cluster``, tests)."""
        reg = self.registry
        return {
            "requests": {
                dict(inst.labels).get("shard", ""): inst.value
                for inst in reg.series("cluster_requests")
            },
            "rebalanced_keys": reg.value("cluster_rebalanced_keys") or 0,
            "unroutable": reg.value("cluster_unroutable") or 0,
            "rejected": reg.value("cluster_rejected") or 0,
            "proxy_errors": {
                dict(inst.labels).get("shard", ""): inst.value
                for inst in reg.series("cluster_proxy_errors")
            },
            "states": {sid: shard.state
                       for sid, shard in self.shards.items()},
        }

    async def cluster_status(self) -> dict:
        """The ``/cluster`` endpoint: ring + shards + counters."""
        status = envelope(
            status="ok",
            role="router",
            uptime_s=time.monotonic() - self._start_monotonic,
            ring=self.ring.describe(),
            shards={sid: shard.as_dict()
                    for sid, shard in self.shards.items()},
            counters=self.counters(),
        )
        if self.status_extra is not None:
            status["supervisor"] = self.status_extra()
        return status


class RouterServer(ServeServer):
    """The router's HTTP face — same wire protocol as a worker."""

    def __init__(self, router: ClusterRouter, host: str = "127.0.0.1",
                 port: int = 8031):
        super().__init__(router, host, port)  # type: ignore[arg-type]
        self.router = router

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer: asyncio.StreamWriter,
                        keep_alive: bool = False) -> bool:
        def respond(status: int, payload: dict,
                    extra: Optional[dict] = None) -> None:
            writer.write(_encode_response(status, payload, extra,
                                          keep_alive=keep_alive))

        if path.startswith("/v1/jobs/") and method == "GET":
            await self._stream_job(path[len("/v1/jobs/"):], writer)
            return True
        if method == "POST" and path in ("/v1/simulate", "/v1/sweep"):
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (json.JSONDecodeError, UnicodeDecodeError):
                respond(400, error_envelope("request body is not valid JSON"))
                await writer.drain()
                return False
            handler = (self.router.simulate if path == "/v1/simulate"
                       else self.router.sweep)
            status, envelope_, extra = await handler(payload)
            respond(status, envelope_, extra)
        elif method == "GET" and path == "/healthz":
            respond(200, await self.router.health())
        elif method == "GET" and path == "/metrics":
            respond(200, await self.router.metrics())
        elif method == "GET" and path == "/cluster":
            respond(200, await self.router.cluster_status())
        elif path in ("/v1/simulate", "/v1/sweep", "/healthz", "/metrics",
                      "/cluster"):
            respond(405, error_envelope(f"{method} not allowed on {path}"))
        else:
            respond(404, error_envelope(f"no route for {method} {path}"))
        await writer.drain()
        return False


class RouterThread(ServerThread):
    """A live router on an ephemeral port, hosted in a daemon thread."""

    server_class = RouterServer

    def __init__(self, router: ClusterRouter, host: str = "127.0.0.1",
                 port: int = 0):
        super().__init__(router, host, port)  # type: ignore[arg-type]
        self.router = router
