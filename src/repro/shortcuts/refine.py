"""Local-search refinement of a selected shortcut set.

Both of the paper's heuristics are greedy: once an edge is placed it is
never reconsidered.  This refinement pass answers "how much is left on the
table?" — it repeatedly tries replacing one shortcut with the best
alternative edge given the *other* fifteen, keeping a swap only when it
lowers the objective, until a full pass makes no improvement (a 1-swap
local optimum).  Used by the E4 ablation as an upper-bound comparator; the
greedy sets turn out to be within a few percent of their local optima,
supporting the paper's choice of the cheap heuristic.
"""

from __future__ import annotations

import numpy as np

from repro.noc.routing import Shortcut
from repro.noc.topology import TopologyProvider
from repro.shortcuts.graph import add_edge_inplace, mesh_distances
from repro.shortcuts.selection import SelectionConfig


def objective(
    topo: TopologyProvider,
    shortcuts: list[Shortcut],
    frequency: np.ndarray | None = None,
) -> float:
    """Sum of (weighted) shortest-path costs with the given overlay."""
    dist = mesh_distances(topo)
    for sc in shortcuts:
        add_edge_inplace(dist, sc.src, sc.dst)
    if frequency is None:
        return float(dist.sum())
    return float((dist * frequency).sum())


def _best_replacement(
    topo: TopologyProvider,
    kept: list[Shortcut],
    config: SelectionConfig,
    frequency: np.ndarray | None,
) -> tuple[Shortcut, float]:
    """The best single edge to add to ``kept`` (exact, vectorized)."""
    dist = mesh_distances(topo)
    for sc in kept:
        add_edge_inplace(dist, sc.src, sc.dst)
    mask = config.endpoint_mask(topo)
    used_src = {sc.src for sc in kept}
    used_dst = {sc.dst for sc in kept}
    n = dist.shape[0]
    best: tuple[float, int, int] | None = None
    freq = frequency
    for i in range(n):
        if not mask[i] or i in used_src:
            continue
        for j in range(n):
            if j == i or not mask[j] or j in used_dst:
                continue
            if dist[i, j] <= 1:
                continue
            improved = np.minimum(dist, dist[:, i][:, None] + 1 + dist[j, :][None, :])
            cost = (
                float(improved.sum())
                if freq is None
                else float((improved * freq).sum())
            )
            key = (cost, i, j)
            if best is None or key < best:
                best = key
    if best is None:
        raise ValueError("no feasible replacement edge")
    cost, i, j = best
    return Shortcut(i, j), cost


def refine_shortcuts(
    topo: TopologyProvider,
    shortcuts: list[Shortcut],
    config: SelectionConfig | None = None,
    frequency: np.ndarray | None = None,
    max_passes: int = 3,
) -> tuple[list[Shortcut], float]:
    """1-swap local search; returns (refined set, final objective).

    Each pass considers every shortcut in turn, removes it, finds the exact
    best replacement given the rest, and keeps whichever is better.  Stops
    at a pass with no improvement or after ``max_passes``.

    This is exact-but-slow (the replacement search is O(V^2) candidate
    edges x O(V^2) evaluation); meant for offline analysis, not the
    reconfiguration path.
    """
    config = config or SelectionConfig(budget=len(shortcuts))
    current = list(shortcuts)
    current_cost = objective(topo, current, frequency)
    for _ in range(max_passes):
        improved = False
        for index in range(len(current)):
            kept = current[:index] + current[index + 1:]
            candidate, cost = _best_replacement(topo, kept, config, frequency)
            if cost < current_cost - 1e-9:
                current = kept + [candidate]
                current_cost = cost
                improved = True
        if not improved:
            break
    return current, current_cost
