"""Region-to-region shortcut selection (Section 3.2.2).

The plain greedy algorithm removes a shortcut's source and destination from
further consideration, so a communication hotspot can attract at most one
shortcut.  The paper's fix: alternate between placing *router-pair* edges
(the plain application-specific step) and *region-pair* edges, where regions
are non-overlapping 3x3 sub-meshes scored by

    CRegion(A, B) = sum over x in A, y in B of F(x, y) * W(x, y)

The best region pair (I, J) is found, and then a concrete edge (i, j) with
``i in I``, ``j in J``, ``i`` not yet a source and ``j`` not yet a
destination is added.  Routers *near* a hotspot thereby receive additional
shortcuts even after the hotspot router itself is saturated — visible in
Figure 2(c).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.noc.routing import Shortcut
from repro.noc.topology import TopologyProvider
from repro.shortcuts.selection import SelectionConfig, ShortcutSelector

REGION_SIZE = 3


def region_origins(topo: TopologyProvider, size: int = REGION_SIZE) -> list[tuple[int, int]]:
    """Bottom-left corners of every size x size sub-mesh."""
    w, h = topo.width, topo.height
    return [(x, y) for x in range(w - size + 1) for y in range(h - size + 1)]


def region_members(
    topo: TopologyProvider, origin: tuple[int, int], size: int = REGION_SIZE
) -> list[int]:
    """Router ids inside the region anchored at ``origin``."""
    x0, y0 = origin
    return [
        topo.router_id(x0 + dx, y0 + dy)
        for dx in range(size)
        for dy in range(size)
    ]


def regions_overlap(a: tuple[int, int], b: tuple[int, int], size: int = REGION_SIZE) -> bool:
    """Do two size x size regions share any router?"""
    return abs(a[0] - b[0]) < size and abs(a[1] - b[1]) < size


class RegionSelector(ShortcutSelector):
    """Alternates router-pair and region-pair placement."""

    def __init__(
        self,
        topo: TopologyProvider,
        config: SelectionConfig,
        frequency: np.ndarray,
        region_size: int = REGION_SIZE,
    ):
        super().__init__(topo, config, np.asarray(frequency, dtype=float))
        self.region_size = region_size
        self._origins = region_origins(topo, region_size)
        self._members = {
            origin: np.array(region_members(topo, origin, region_size))
            for origin in self._origins
        }

    def _region_cost(self, a: tuple[int, int], b: tuple[int, int]) -> float:
        ma, mb = self._members[a], self._members[b]
        block = (self.frequency[np.ix_(ma, mb)] * self.dist[np.ix_(ma, mb)])
        return float(block.sum())

    def add_region_edge(self) -> Shortcut | None:
        """One region-pair placement step."""
        mask = self._candidate_mask()
        if not mask.any():
            return None
        best_pair: tuple[float, tuple[int, int], tuple[int, int]] | None = None
        for a in self._origins:
            for b in self._origins:
                if regions_overlap(a, b, self.region_size):
                    continue
                # The chosen regions must still contain an eligible edge.
                sub = mask[np.ix_(self._members[a], self._members[b])]
                if not sub.any():
                    continue
                cost = self._region_cost(a, b)
                key = (-cost, a, b)
                if best_pair is None or key < best_pair:
                    best_pair = key
        if best_pair is None or -best_pair[0] <= 0:
            return None
        _, region_i, region_j = best_pair
        ma, mb = self._members[region_i], self._members[region_j]
        sub_mask = mask[np.ix_(ma, mb)]
        score = np.where(
            sub_mask, (self.frequency * self.dist)[np.ix_(ma, mb)], -1.0
        )
        flat = int(np.argmax(score))
        ii, jj = divmod(flat, score.shape[1])
        if score[ii, jj] < 0:
            return None
        self._commit(int(ma[ii]), int(mb[jj]))
        return self.selected[-1]

    def run_alternating(self) -> list[Shortcut]:
        """Alternate router-pair and region-pair steps until the budget is spent."""
        use_region = False
        while len(self.selected) < self.config.budget:
            step = self.add_region_edge if use_region else self.add_greedy_edge
            if step() is None:
                # Try the other step once before giving up entirely.
                other = self.add_greedy_edge if use_region else self.add_region_edge
                if other() is None:
                    break
            use_region = not use_region
        return list(self.selected)


def select_region_shortcuts(
    topo: TopologyProvider,
    frequency: np.ndarray,
    config: Optional[SelectionConfig] = None,
    region_size: int = REGION_SIZE,
) -> list[Shortcut]:
    """The paper's full application-specific algorithm (with regions)."""
    config = config if config is not None else SelectionConfig()
    return RegionSelector(topo, config, frequency, region_size).run_alternating()
