"""Distance bookkeeping for shortcut selection.

Selection works on the directed graph G of the topology provider's
routers (Section 3.2.1).  We keep the all-pairs shortest-path matrix D
as a dense numpy array: the provider supplies the initial D
(:meth:`~repro.noc.topology.base.TopologyProvider.distance_matrix`; the
mesh's is just Manhattan distance), and adding one directed edge (i, j)
updates it in O(V^2) via

    D'[x, y] = min(D[x, y],  D[x, i] + 1 + D[j, y])

which is exactly the relaxation the paper's permutation-graph heuristic
(Fig 3a) evaluates for every candidate edge.
"""

from __future__ import annotations

import numpy as np

from repro.noc.topology import TopologyProvider


def mesh_distances(topo: TopologyProvider) -> np.ndarray:
    """Initial APSP matrix of the bare provider graph (no shortcuts).

    Kept under its historical name; delegates to the provider so torus
    wrap links and concentrated grids are measured correctly.
    """
    return topo.distance_matrix()


def with_edge(dist: np.ndarray, i: int, j: int) -> np.ndarray:
    """APSP matrix after adding the directed unit edge (i, j)."""
    via = dist[:, i][:, None] + 1 + dist[j, :][None, :]
    return np.minimum(dist, via)


def add_edge_inplace(dist: np.ndarray, i: int, j: int) -> None:
    """In-place version of :func:`with_edge`."""
    via = dist[:, i][:, None] + 1 + dist[j, :][None, :]
    np.minimum(dist, via, out=dist)


def total_cost(dist: np.ndarray, frequency: np.ndarray | None = None) -> float:
    """The selection objective: sum of F(x,y) * W(x,y) over all pairs.

    With ``frequency=None`` this is the architecture-specific objective
    (F == 1 for every pair): the plain sum of shortest-path lengths.
    """
    if frequency is None:
        return float(dist.sum())
    return float((dist * frequency).sum())


def cost_after_edge(
    dist: np.ndarray, i: int, j: int, frequency: np.ndarray | None = None
) -> float:
    """Objective value of the permutation graph G' = G + (i, j).

    Evaluated without materializing G' permanently — this is the inner loop
    of the Fig 3a heuristic.
    """
    via = dist[:, i][:, None] + 1 + dist[j, :][None, :]
    improved = np.minimum(dist, via)
    if frequency is None:
        return float(improved.sum())
    return float((improved * frequency).sum())
