"""Distance bookkeeping for shortcut selection.

Selection works on the directed grid graph G of mesh routers (Section
3.2.1).  We keep the all-pairs shortest-path matrix D as a dense numpy
array: the mesh's initial D is just Manhattan distance, and adding one
directed edge (i, j) updates it in O(V^2) via

    D'[x, y] = min(D[x, y],  D[x, i] + 1 + D[j, y])

which is exactly the relaxation the paper's permutation-graph heuristic
(Fig 3a) evaluates for every candidate edge.
"""

from __future__ import annotations

import numpy as np

from repro.noc.topology import MeshTopology


def mesh_distances(topo: MeshTopology) -> np.ndarray:
    """Initial APSP matrix of the bare mesh (Manhattan distances)."""
    n = topo.params.num_routers
    xs = np.array([topo.coord(r)[0] for r in range(n)])
    ys = np.array([topo.coord(r)[1] for r in range(n)])
    return (
        np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])
    ).astype(np.int32)


def with_edge(dist: np.ndarray, i: int, j: int) -> np.ndarray:
    """APSP matrix after adding the directed unit edge (i, j)."""
    via = dist[:, i][:, None] + 1 + dist[j, :][None, :]
    return np.minimum(dist, via)


def add_edge_inplace(dist: np.ndarray, i: int, j: int) -> None:
    """In-place version of :func:`with_edge`."""
    via = dist[:, i][:, None] + 1 + dist[j, :][None, :]
    np.minimum(dist, via, out=dist)


def total_cost(dist: np.ndarray, frequency: np.ndarray | None = None) -> float:
    """The selection objective: sum of F(x,y) * W(x,y) over all pairs.

    With ``frequency=None`` this is the architecture-specific objective
    (F == 1 for every pair): the plain sum of shortest-path lengths.
    """
    if frequency is None:
        return float(dist.sum())
    return float((dist * frequency).sum())


def cost_after_edge(
    dist: np.ndarray, i: int, j: int, frequency: np.ndarray | None = None
) -> float:
    """Objective value of the permutation graph G' = G + (i, j).

    Evaluated without materializing G' permanently — this is the inner loop
    of the Fig 3a heuristic.
    """
    via = dist[:, i][:, None] + 1 + dist[j, :][None, :]
    improved = np.minimum(dist, via)
    if frequency is None:
        return float(improved.sum())
    return float((improved * frequency).sum())
