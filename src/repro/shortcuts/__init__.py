"""Shortcut-selection algorithms (the paper's Sections 3.2.1-3.2.2)."""

from repro.shortcuts.graph import (
    add_edge_inplace, cost_after_edge, mesh_distances, total_cost, with_edge,
)
from repro.shortcuts.refine import objective, refine_shortcuts
from repro.shortcuts.region import (
    RegionSelector, region_members, region_origins, regions_overlap,
    select_region_shortcuts,
)
from repro.shortcuts.selection import (
    SelectionConfig, ShortcutSelector, select_application_shortcuts,
    select_architecture_shortcuts,
)

__all__ = [
    "RegionSelector",
    "SelectionConfig",
    "ShortcutSelector",
    "add_edge_inplace",
    "cost_after_edge",
    "mesh_distances",
    "objective",
    "refine_shortcuts",
    "region_members",
    "region_origins",
    "regions_overlap",
    "select_application_shortcuts",
    "select_architecture_shortcuts",
    "select_region_shortcuts",
    "total_cost",
    "with_edge",
]
