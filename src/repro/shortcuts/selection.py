"""Shortcut-selection heuristics (Sections 3.2.1 and 3.2.2).

Both of the paper's heuristics are implemented, unified over an optional
communication-frequency matrix F:

* **Architecture-specific** selection uses F == 1 for every pair, so the
  objective is the plain sum of shortest-path costs ``sum W(x, y)``.
* **Application-specific** selection passes the profiled message counts
  F(x, y), making the objective ``sum F(x, y) * W(x, y)``.

The two heuristics:

* ``method="permutation"`` (Fig 3a): for every candidate edge build the
  permutation graph G' = G + (i, j), evaluate the total objective on G',
  and keep the best candidate; repeat until the budget is spent.  A naive
  implementation is O(B V^5); evaluating candidates with the O(V^2)
  single-edge APSP relaxation brings it to O(B V^4), which is exact and
  tractable at V = 100.
* ``method="greedy"`` (Fig 3b): repeatedly add the maximum-cost edge
  (largest W, or largest F * W) — O(B V^3) as in the paper.  The paper
  found both "to perform comparably well" and uses the greedy one.

Constraints honoured (Section 3.2.1): at most one inbound and one outbound
shortcut per router (the 6-port limit); the four memory-attached corner
routers are never endpoints; endpoints may additionally be restricted to a
set of RF-enabled routers (the adaptive architecture's 50 or 25 access
points).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.noc.routing import Shortcut
from repro.noc.topology import TopologyProvider
from repro.shortcuts.graph import (
    add_edge_inplace, cost_after_edge, mesh_distances,
)


@dataclass
class SelectionConfig:
    """Knobs shared by every selection algorithm."""

    budget: int = 16                      # B: unidirectional shortcuts to add
    allowed: set[int] | None = None       # RF-enabled routers (None = all)
    forbid_corners: bool = True           # memory-attached corners excluded
    extra_forbidden: set[int] = field(default_factory=set)

    def endpoint_mask(self, topo: TopologyProvider) -> np.ndarray:
        """Boolean mask of routers eligible to be a shortcut endpoint."""
        n = topo.num_routers
        mask = np.zeros(n, dtype=bool)
        allowed = self.allowed if self.allowed is not None else range(n)
        mask[list(allowed)] = True
        if self.forbid_corners:
            mask[topo.memports] = False
            w, h = topo.width, topo.height
            corners = [
                topo.router_id(0, 0), topo.router_id(w - 1, 0),
                topo.router_id(0, h - 1), topo.router_id(w - 1, h - 1),
            ]
            mask[corners] = False
        for r in self.extra_forbidden:
            mask[r] = False
        return mask


class ShortcutSelector:
    """Stateful greedy selection honouring per-router port limits."""

    def __init__(
        self,
        topo: TopologyProvider,
        config: SelectionConfig,
        frequency: np.ndarray | None = None,
    ):
        self.topo = topo
        self.config = config
        self.frequency = frequency
        self.dist = mesh_distances(topo)
        self.endpoint_ok = config.endpoint_mask(topo)
        self.used_src: set[int] = set()
        self.used_dst: set[int] = set()
        self.selected: list[Shortcut] = []

    # -- candidate bookkeeping ------------------------------------------------

    def _candidate_mask(self) -> np.ndarray:
        """(i, j) pairs that may still receive a shortcut."""
        n = self.dist.shape[0]
        src_ok = self.endpoint_ok.copy()
        src_ok[list(self.used_src)] = False
        dst_ok = self.endpoint_ok.copy()
        dst_ok[list(self.used_dst)] = False
        mask = src_ok[:, None] & dst_ok[None, :]
        np.fill_diagonal(mask, False)
        return mask

    def _score(self) -> np.ndarray:
        """Greedy edge value: W (architecture) or F * W (application)."""
        if self.frequency is None:
            return self.dist.astype(float)
        return self.frequency * self.dist

    def _commit(self, i: int, j: int) -> None:
        self.used_src.add(i)
        self.used_dst.add(j)
        add_edge_inplace(self.dist, i, j)
        self.selected.append(Shortcut(i, j))

    # -- the two heuristics ---------------------------------------------------

    def add_greedy_edge(self) -> Shortcut | None:
        """Fig 3b: add the maximum-cost candidate edge."""
        mask = self._candidate_mask()
        if not mask.any():
            return None
        score = np.where(mask, self._score(), -1.0)
        flat = int(np.argmax(score))
        i, j = divmod(flat, score.shape[1])
        if score[i, j] <= 0:
            return None
        self._commit(i, j)
        return self.selected[-1]

    def add_permutation_edge(self) -> Shortcut | None:
        """Fig 3a: add the candidate whose permutation graph is cheapest."""
        mask = self._candidate_mask()
        if not mask.any():
            return None
        best: tuple[float, int, int] | None = None
        pairs = np.argwhere(mask)
        for i, j in pairs:
            # Only evaluate candidates that can actually improve something.
            if self.dist[i, j] <= 1:
                continue
            cost = cost_after_edge(self.dist, int(i), int(j), self.frequency)
            key = (cost, int(i), int(j))
            if best is None or key < best:
                best = key
        if best is None:
            return None
        _, i, j = best
        self._commit(i, j)
        return self.selected[-1]

    def run(self, method: str = "greedy") -> list[Shortcut]:
        """Spend the whole budget with one heuristic."""
        step = {
            "greedy": self.add_greedy_edge,
            "permutation": self.add_permutation_edge,
        }[method]
        while len(self.selected) < self.config.budget:
            if step() is None:
                break
        return list(self.selected)


def select_architecture_shortcuts(
    topo: TopologyProvider,
    config: Optional[SelectionConfig] = None,
    method: str = "greedy",
) -> list[Shortcut]:
    """Design-time (static) shortcuts: minimize the sum of path costs."""
    config = config if config is not None else SelectionConfig()
    return ShortcutSelector(topo, config, frequency=None).run(method)


def select_application_shortcuts(
    topo: TopologyProvider,
    frequency: np.ndarray,
    config: Optional[SelectionConfig] = None,
    method: str = "greedy",
) -> list[Shortcut]:
    """Application-specific shortcuts: minimize sum F(x,y) * W(x,y).

    ``frequency`` is the profiled message-count matrix (event counters),
    e.g. from :meth:`repro.traffic.ProbabilisticTraffic.collect_profile`.
    For hotspot-aware region alternation use
    :func:`repro.shortcuts.region.select_region_shortcuts`.
    """
    config = config if config is not None else SelectionConfig()
    freq = np.asarray(frequency, dtype=float)
    if freq.shape != (topo.num_routers,) * 2:
        raise ValueError("frequency matrix shape must match the mesh")
    return ShortcutSelector(topo, config, frequency=freq).run(method)
