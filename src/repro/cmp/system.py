"""The closed-loop CMP system: cores, banks, and memory over the NoC.

This binds the cache structures and address kernels to a live
:class:`~repro.noc.network.Network`: every network message is produced by a
cache event, and cores *stall* when their outstanding-miss budget (MSHRs)
is exhausted — so network latency feeds back into how much traffic the
system offers, the behaviour open-loop traces cannot show.

Protocol (message level, home-directory, block granularity):

* core load/store → L1 probe; hit retires silently;
* L1 miss → 7 B request to the block's home L2 bank (address-interleaved);
* bank hit → 39 B data reply after ``bank_latency``; a write first sends
  invalidations to the other sharers (serial unicasts, or one DBV message
  through a pluggable multicast realization) which drop the block from
  remote L1s;
* bank miss → 132 B fetch to the quadrant's memory controller, serviced in
  ``memory_latency`` cycles, 132 B refill back, then the data reply;
  evictions write back dirty victims and invalidate their sharers;
* concurrent misses to one in-flight line merge at the bank (MSHR merge);
* the reply's tail ejection at the core retires the load, fills the L1,
  and frees the MSHR.

Everything rides the network's opaque message ``payload``; the system
dispatches on it from a single delivery hook.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Optional

from repro.cmp.address import make_kernel
from repro.cmp.caches import L1Cache, L2Bank
from repro.noc.message import Message, MessageClass, Packet, message_bytes
from repro.noc.network import Network
from repro.noc.topology import TopologyProvider, NodeKind


@dataclass(frozen=True)
class CMPConfig:
    """Knobs of the closed-loop system."""

    kernel: str = "pointer_chase"
    mem_ratio: float = 0.3         # fraction of instructions touching memory
    mshrs: int = 4                 # outstanding load misses per core
    l1_lines: int = 64
    l2_sets: int = 128
    l2_ways: int = 8
    bank_latency: int = 4          # L2 tag+data access, network cycles
    memory_latency: int = 60       # controller access time, network cycles
    memory_service_interval: int = 6  # controller bandwidth: 1 block / N cyc
    seed: int = 2008


@dataclass
class CoreState:
    """Per-core execution state."""

    router: int
    l1: L1Cache
    stream: object
    outstanding: int = 0
    retired: int = 0
    stall_cycles: int = 0
    load_latencies: list[int] = field(default_factory=list)
    #: Core-side MSHR merging: block -> number of loads waiting on it.
    in_flight: dict[int, int] = field(default_factory=dict)


class CMPSystem:
    """Drives a network as the memory system of a 64-core CMP.

    Composes as a traffic source: pass it to the :class:`Simulator` (or
    call :meth:`tick` each cycle yourself).  ``invalidation_realization``
    optionally routes DBV invalidations through a multicast engine
    (:mod:`repro.multicast`); by default they go as serial unicasts.
    """

    def __init__(
        self,
        network: Network,
        config: Optional[CMPConfig] = None,
        invalidation_realization=None,
    ):
        config = config if config is not None else CMPConfig()
        self.network = network
        self.config = config
        self.topology: TopologyProvider = network.topology
        self.invalidation_realization = invalidation_realization
        import random

        self._rng = random.Random(config.seed)

        core_routers = self.topology.cores
        self.cores: dict[int, CoreState] = {
            router: CoreState(
                router=router,
                l1=L1Cache(config.l1_lines),
                stream=make_kernel(config.kernel, i, len(core_routers),
                                   seed=config.seed),
            )
            for i, router in enumerate(core_routers)
        }
        self.banks: dict[int, L2Bank] = {
            router: L2Bank(config.l2_sets, config.l2_ways)
            for router in self.topology.caches
        }
        self._bank_order = list(self.topology.caches)
        self._num_banks = len(self._bank_order)
        self._mem_for_bank = {
            bank: self._nearest_memport(bank) for bank in self._bank_order
        }
        # Memory controllers serve one block fetch per service interval.
        self._mem_busy_until: dict[int, int] = {
            m: 0 for m in self.topology.memports
        }
        # In-flight L2 misses per bank: block -> list of (core, is_write).
        self._pending: dict[int, dict[int, list]] = defaultdict(dict)
        self._events: dict[int, list] = defaultdict(list)
        self.invalidations_sent = 0
        self.multicast_invalidations = 0
        # Event-counter profile F(x, y), fed by every message this system
        # sends — directly consumable by application-specific selection.
        self.profile_counts: dict[tuple[int, int], int] = defaultdict(int)
        network.delivery_hooks.append(self._on_delivery)

    # -- mapping -----------------------------------------------------------

    def home_bank(self, block: int) -> int:
        """Static address interleaving across the 32 banks."""
        return self._bank_order[block % self._num_banks]

    def _local(self, block: int) -> int:
        """Bank-local line address.

        The interleaving consumes the low ``log2(banks)`` bits; indexing
        the bank's sets with the *global* address would alias every block
        a bank owns into 1/32 of its sets.
        """
        return block // self._num_banks

    def _nearest_memport(self, bank: int) -> int:
        return min(
            self.topology.memports,
            key=lambda m: (self.topology.manhattan(bank, m), m),
        )

    # -- message plumbing -----------------------------------------------------

    def _send(self, src: int, dst: int, cls: MessageClass, payload) -> Packet:
        message = Message(
            src=src, dst=dst,
            size_bytes=message_bytes(cls, self.network.params.message),
            cls=cls, payload=payload,
        )
        self.profile_counts[(src, dst)] += 1
        return self.network.inject(message)

    def profile_matrix(self):
        """F(x, y) as a dense numpy matrix (for shortcut selection)."""
        import numpy as np

        n = self.topology.num_routers
        matrix = np.zeros((n, n))
        for (src, dst), count in self.profile_counts.items():
            matrix[src, dst] = count
        return matrix

    def _schedule(self, delay: int, fn) -> None:
        self._events[self.network.cycle + delay].append(fn)

    # -- functional warmup ---------------------------------------------------

    def warm_caches(self, accesses_per_core: int = 2_000) -> None:
        """Functionally warm L1s, L2 tags, and directory state.

        Runs each core's address stream through the cache structures with
        no timing and no network messages — the standard warm-start
        methodology, avoiding a cold-miss burst that would put thousands
        of fetches into the memory queue before steady state.
        """
        for core in self.cores.values():
            for cycle in range(accesses_per_core):
                access = core.stream.next_access(cycle)
                if core.l1.lookup(access.block):
                    continue
                core.l1.fill(access.block)
                bank = self.banks[self.home_bank(access.block)]
                local = self._local(access.block)
                line = bank.lookup(local)
                if line is None:
                    line, victim = bank.install(local)
                    if victim is not None and victim.sharers:
                        for sharer in victim.sharers:
                            owner = self.cores.get(sharer)
                            if owner is not None:
                                owner.l1.invalidate(access.block)
                if access.is_write:
                    line.sharers = {core.router}
                    line.dirty = True
                else:
                    line.sharers.add(core.router)
        # Warmup must not pollute the measured hit rates.
        for core in self.cores.values():
            core.l1.hits = core.l1.misses = 0
        for bank in self.banks.values():
            bank.hits = bank.misses = 0
            bank.evictions = bank.writebacks = 0

    # -- per-cycle driver --------------------------------------------------------

    def tick(self, network: Network) -> None:
        """Advance one cycle: run due events, then let every core issue."""
        cycle = network.cycle
        for fn in self._events.pop(cycle, ()):
            fn()
        for core in self.cores.values():
            self._issue(core, cycle)

    def _issue(self, core: CoreState, cycle: int) -> None:
        if core.outstanding >= self.config.mshrs:
            core.stall_cycles += 1
            return
        if self._rng.random() >= self.config.mem_ratio:
            core.retired += 1  # compute instruction
            return
        access = core.stream.next_access(cycle)
        if core.l1.lookup(access.block):
            core.retired += 1
            return
        if access.block in core.in_flight:
            # MSHR merge: the line is already on its way.
            if access.is_write:
                core.retired += 1  # write-combined
            else:
                core.in_flight[access.block] += 1  # retires on the fill
            return
        payload = ("req", access.block, core.router, access.is_write, cycle)
        self._send(core.router, self.home_bank(access.block),
                   MessageClass.REQUEST, payload)
        if access.is_write:
            core.retired += 1  # write buffer: stores do not stall
            core.in_flight[access.block] = 0
        else:
            core.outstanding += 1
            core.in_flight[access.block] = 1

    # -- delivery dispatch ----------------------------------------------------------

    def _on_delivery(self, packet: Packet, cycle: int) -> None:
        payload = packet.message.payload
        if not isinstance(payload, tuple):
            return
        kind = payload[0]
        if kind == "req":
            _, block, core, is_write, issued = payload
            self._schedule(
                self.config.bank_latency,
                lambda: self._bank_access(packet.dst, block, core, is_write,
                                          issued),
            )
        elif kind == "fetch":
            _, bank, block = payload
            controller = packet.dst
            start = max(cycle, self._mem_busy_until[controller])
            self._mem_busy_until[controller] = (
                start + self.config.memory_service_interval
            )
            done = start + self.config.memory_latency
            self._schedule(
                done - cycle,
                lambda: self._send(controller, bank, MessageClass.MEMORY,
                                   ("refill", bank, block)),
            )
        elif kind == "refill":
            _, bank, block = payload
            self._refill(bank, block)
        elif kind == "data":
            _, block, core, issued = payload
            self._data_arrived(core, block, issued, cycle)
        elif kind == "inv":
            _, block = payload
            self._invalidate_at(packet.dst, block)
        # "wb" (writeback) needs no action at the memory controller.

    # -- bank behaviour -----------------------------------------------------------

    def _bank_access(self, bank_router: int, block: int, core: int,
                     is_write: bool, issued: int) -> None:
        bank = self.banks[bank_router]
        line = bank.lookup(self._local(block))
        if line is None:
            pending = self._pending[bank_router]
            if block in pending:
                pending[block].append((core, is_write, issued))
                return
            pending[block] = [(core, is_write, issued)]
            self._send(bank_router, self._mem_for_bank[bank_router],
                       MessageClass.MEMORY, ("fetch", bank_router, block))
            return
        self._serve_hit(bank_router, line, block, core, is_write, issued)

    def _serve_hit(self, bank_router: int, line, block: int, core: int,
                   is_write: bool, issued: int) -> None:
        if is_write:
            victims = {c for c in line.sharers if c != core}
            if victims:
                self._send_invalidations(bank_router, block, victims)
            line.sharers = {core}
            line.dirty = True
        else:
            line.sharers.add(core)
        self._send(bank_router, core, MessageClass.DATA,
                   ("data", block, core, issued))

    def _refill(self, bank_router: int, block: int) -> None:
        bank = self.banks[bank_router]
        line, victim = bank.install(self._local(block))
        if victim is not None:
            victim_block = victim.block * self._num_banks + (
                block % self._num_banks
            )
            if victim.sharers:
                self._send_invalidations(bank_router, victim_block,
                                         set(victim.sharers))
            if victim.dirty:
                self._send(bank_router, self._mem_for_bank[bank_router],
                           MessageClass.MEMORY, ("wb", victim_block))
        waiters = self._pending[bank_router].pop(block, [])
        for core, is_write, issued in waiters:
            self._serve_hit(bank_router, line, block, core, is_write, issued)

    def _send_invalidations(self, bank_router: int, block: int,
                            victims: set[int]) -> None:
        self.invalidations_sent += len(victims)
        if self.invalidation_realization is not None:
            message = Message(
                src=bank_router, dst=bank_router,
                size_bytes=message_bytes(
                    MessageClass.MULTICAST_INV, self.network.params.message
                ),
                cls=MessageClass.MULTICAST_INV,
                dbv=frozenset(victims),
                payload=("inv", block),
            )
            message.inject_cycle = self.network.cycle
            self.invalidation_realization.handle(message)
            self.multicast_invalidations += 1
            return
        for victim in sorted(victims):
            self._send(bank_router, victim, MessageClass.MULTICAST_INV,
                       ("inv", block))

    # -- core-side completions ---------------------------------------------------------

    def _data_arrived(self, core_router: int, block: int, issued: int,
                      cycle: int) -> None:
        core = self.cores[core_router]
        core.l1.fill(block)
        waiting = core.in_flight.pop(block, 0)
        if waiting > 0:
            core.outstanding -= 1
            core.retired += waiting  # the original load + merged followers
            core.load_latencies.append(cycle - issued)

    def _invalidate_at(self, router: int, block: int) -> None:
        core = self.cores.get(router)
        if core is not None:
            core.l1.invalidate(block)

    # -- metrics -------------------------------------------------------------------------

    def total_retired(self) -> int:
        """Instructions retired across all cores."""
        return sum(core.retired for core in self.cores.values())

    def ipc(self, cycles: int) -> float:
        """Retired instructions per core per network cycle."""
        if cycles <= 0:
            return float("nan")
        return self.total_retired() / (len(self.cores) * cycles)

    def avg_load_latency(self) -> float:
        """Mean issue-to-fill latency of completed load misses."""
        latencies = [
            lat for core in self.cores.values() for lat in core.load_latencies
        ]
        if not latencies:
            return float("nan")
        return sum(latencies) / len(latencies)

    def stall_fraction(self, cycles: int) -> float:
        """Fraction of core-cycles lost to full MSHRs."""
        if cycles <= 0:
            return float("nan")
        stalls = sum(core.stall_cycles for core in self.cores.values())
        return stalls / (len(self.cores) * cycles)

    def report(self, cycles: int) -> dict[str, float]:
        """Headline metrics (IPC, latencies, hit rates) as a dict."""
        l1_hits = sum(c.l1.hits for c in self.cores.values())
        l1_total = l1_hits + sum(c.l1.misses for c in self.cores.values())
        l2_hits = sum(b.hits for b in self.banks.values())
        l2_total = l2_hits + sum(b.misses for b in self.banks.values())
        return {
            "ipc": self.ipc(cycles),
            "avg_load_latency": self.avg_load_latency(),
            "stall_fraction": self.stall_fraction(cycles),
            "l1_hit_rate": l1_hits / l1_total if l1_total else float("nan"),
            "l2_hit_rate": l2_hits / l2_total if l2_total else float("nan"),
            "invalidations": float(self.invalidations_sent),
        }
