"""Cache structures: per-core L1 filters and shared L2 bank tag stores.

Real tag arrays, not hit-rate dials: the L1 is a direct-mapped array of
block tags; each L2 bank is set-associative with LRU replacement, a dirty
bit, and a directory sharer set per line.  Network traffic in the
closed-loop system is therefore *produced* by these structures — change the
working set or the cache geometry and the traffic changes the way it would
in a full-system simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class L1Cache:
    """Direct-mapped private L1 filter (block granularity)."""

    def __init__(self, num_lines: int = 64):
        if num_lines <= 0:
            raise ValueError("L1 needs at least one line")
        self.num_lines = num_lines
        self.tags = [-1] * num_lines
        self.hits = 0
        self.misses = 0

    def _index(self, block: int) -> int:
        return block % self.num_lines

    def lookup(self, block: int) -> bool:
        """Probe; counts a hit or a miss."""
        if self.tags[self._index(block)] == block:
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, block: int) -> None:
        """Install a block (evicting whatever shared its line)."""
        self.tags[self._index(block)] = block

    def invalidate(self, block: int) -> bool:
        """Drop a block if present (directory invalidation); True if it was."""
        index = self._index(block)
        if self.tags[index] == block:
            self.tags[index] = -1
            return True
        return False

    @property
    def hit_rate(self) -> float:
        """Hits over total probes since the last counter reset."""
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")


@dataclass
class L2Line:
    """One L2 line: tag, dirty bit, and the directory's sharer set."""

    block: int
    dirty: bool = False
    sharers: set[int] = field(default_factory=set)


class L2Bank:
    """Set-associative L2 bank with LRU replacement and directory state."""

    def __init__(self, num_sets: int = 256, ways: int = 8):
        if num_sets <= 0 or ways <= 0:
            raise ValueError("bank geometry must be positive")
        self.num_sets = num_sets
        self.ways = ways
        # Per set: list of L2Line in LRU order (front = least recent).
        self.sets: list[list[L2Line]] = [[] for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0

    def _set(self, block: int) -> list[L2Line]:
        return self.sets[block % self.num_sets]

    def lookup(self, block: int) -> L2Line | None:
        """Probe and update LRU; counts a hit or a miss."""
        lines = self._set(block)
        for i, line in enumerate(lines):
            if line.block == block:
                lines.append(lines.pop(i))  # most-recently used at back
                self.hits += 1
                return line
        self.misses += 1
        return None

    def peek(self, block: int) -> L2Line | None:
        """Probe without LRU or counter effects."""
        for line in self._set(block):
            if line.block == block:
                return line
        return None

    def install(self, block: int) -> tuple[L2Line, L2Line | None]:
        """Insert a line, evicting LRU if the set is full.

        Returns (new line, evicted line or None).  The caller handles the
        victim's writeback and sharer invalidations.
        """
        lines = self._set(block)
        victim = None
        if len(lines) >= self.ways:
            victim = lines.pop(0)
            self.evictions += 1
            if victim.dirty:
                self.writebacks += 1
        line = L2Line(block)
        lines.append(line)
        return line, victim

    @property
    def occupancy(self) -> int:
        """Lines currently resident across all sets."""
        return sum(len(s) for s in self.sets)

    @property
    def hit_rate(self) -> float:
        """Hits over total probes since the last counter reset."""
        total = self.hits + self.misses
        return self.hits / total if total else float("nan")
