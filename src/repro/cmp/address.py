"""Address-stream kernels: what the cores actually touch.

The paper's application traces come from real programs; this closed-loop
substrate replaces them with *mechanistic* kernels — address generators
whose cache behaviour (and therefore network traffic) emerges from the
memory hierarchy rather than being sampled from a distribution:

* ``streaming`` — sequential sweeps over large private arrays: high L1
  miss rate on line boundaries, L2 streaming misses, heavy memory traffic;
* ``pointer_chase`` — uniform random accesses over a large working set:
  misses everywhere, latency-bound cores;
* ``producer_consumer`` — each core reads blocks its ring-neighbour
  writes: directory sharing, invalidations, dataflow-patterned bank
  traffic (the paper's UniDF motif, produced by coherence);
* ``lock_hotspot`` — every core hammers a handful of shared blocks homed
  on one bank: the 1Hotspot motif plus invalidation multicasts.

Addresses are block addresses (one unit = one cache line).
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Access:
    """One memory operation issued by a core."""

    block: int
    is_write: bool


class AddressStream:
    """Base: per-core generator of :class:`Access`."""

    def next_access(self, cycle: int) -> Access:  # pragma: no cover
        """Produce the next memory access of this stream."""
        raise NotImplementedError


class StreamingKernel(AddressStream):
    """Sequential sweep over a private region, occasional writes."""

    def __init__(self, core_index: int, region_blocks: int = 448,
                 write_ratio: float = 0.3, seed: int = 0):
        self.base = (core_index + 1) * 1_000_000
        self.region = region_blocks
        self.write_ratio = write_ratio
        self.pos = 0
        self.rng = random.Random(seed * 977 + core_index)

    def next_access(self, cycle: int) -> Access:
        """Produce the next memory access of this stream."""
        block = self.base + self.pos
        self.pos = (self.pos + 1) % self.region
        return Access(block, self.rng.random() < self.write_ratio)


class PointerChaseKernel(AddressStream):
    """Uniform random blocks over a large private working set."""

    def __init__(self, core_index: int, working_set_blocks: int = 512,
                 write_ratio: float = 0.1, seed: int = 0):
        self.base = (core_index + 1) * 1_000_000
        self.working_set = working_set_blocks
        self.write_ratio = write_ratio
        self.rng = random.Random(seed * 1237 + core_index)

    def next_access(self, cycle: int) -> Access:
        """Produce the next memory access of this stream."""
        block = self.base + self.rng.randrange(self.working_set)
        return Access(block, self.rng.random() < self.write_ratio)


class ProducerConsumerKernel(AddressStream):
    """Ring pipeline: write own buffer, read the upstream neighbour's."""

    def __init__(self, core_index: int, num_cores: int,
                 buffer_blocks: int = 256, read_ratio: float = 0.6,
                 seed: int = 0):
        self.own_base = (core_index + 1) * 100_000
        upstream = (core_index - 1) % num_cores
        self.upstream_base = (upstream + 1) * 100_000
        self.buffer = buffer_blocks
        self.read_ratio = read_ratio
        self.rng = random.Random(seed * 31 + core_index)

    def next_access(self, cycle: int) -> Access:
        """Produce the next memory access of this stream."""
        offset = self.rng.randrange(self.buffer)
        if self.rng.random() < self.read_ratio:
            return Access(self.upstream_base + offset, False)
        return Access(self.own_base + offset, True)


class LockHotspotKernel(AddressStream):
    """Mostly private work, frequent touches of a few shared hot blocks."""

    def __init__(self, core_index: int, hot_blocks: int = 4,
                 hot_ratio: float = 0.3, private_blocks: int = 384,
                 write_ratio_hot: float = 0.5, seed: int = 0):
        self.private_base = (core_index + 1) * 1_000_000
        self.private = private_blocks
        self.hot_blocks = hot_blocks
        self.hot_ratio = hot_ratio
        self.write_ratio_hot = write_ratio_hot
        self.rng = random.Random(seed * 613 + core_index)

    def next_access(self, cycle: int) -> Access:
        """Produce the next memory access of this stream."""
        if self.rng.random() < self.hot_ratio:
            # Shared blocks live at small fixed addresses (one home bank).
            block = self.rng.randrange(self.hot_blocks)
            return Access(block, self.rng.random() < self.write_ratio_hot)
        block = self.private_base + self.rng.randrange(self.private)
        return Access(block, self.rng.random() < 0.1)


class ReuseWrapper(AddressStream):
    """Adds temporal locality to any stream.

    With probability ``reuse`` the next access re-touches one of the last
    ``window`` distinct blocks (a register/stack/loop-variable proxy);
    otherwise the base stream advances.  Real programs re-reference
    recently touched lines heavily — without this, block-granularity
    kernels would never hit the L1 at all.
    """

    def __init__(self, base: AddressStream, reuse: float = 0.7,
                 window: int = 24, seed: int = 0):
        if not (0.0 <= reuse < 1.0):
            raise ValueError("reuse must be in [0, 1)")
        self.base = base
        self.reuse = reuse
        self.window = window
        self.recent: list[Access] = []
        self.rng = random.Random(seed * 389 + 7)

    def next_access(self, cycle: int) -> Access:
        """Produce the next memory access of this stream."""
        if self.recent and self.rng.random() < self.reuse:
            return self.rng.choice(self.recent)
        access = self.base.next_access(cycle)
        self.recent.append(access)
        if len(self.recent) > self.window:
            self.recent.pop(0)
        return access


KERNELS = {
    "streaming": StreamingKernel,
    "pointer_chase": PointerChaseKernel,
    "producer_consumer": ProducerConsumerKernel,
    "lock_hotspot": LockHotspotKernel,
}

#: Temporal-reuse probability per kernel (fresh-block accesses otherwise).
KERNEL_REUSE = {
    "streaming": 0.85,        # ~8 word accesses per cache line
    "pointer_chase": 0.70,    # loop bodies around dependent loads
    "producer_consumer": 0.70,
    "lock_hotspot": 0.70,
}


def make_kernel(name: str, core_index: int, num_cores: int, seed: int = 0):
    """Instantiate a kernel by name for one core (with temporal reuse)."""
    if name == "producer_consumer":
        base = ProducerConsumerKernel(core_index, num_cores, seed=seed)
    else:
        try:
            cls = KERNELS[name]
        except KeyError:
            raise ValueError(
                f"unknown kernel {name!r}; choose from {sorted(KERNELS)}"
            )
        base = cls(core_index, seed=seed)
    return ReuseWrapper(base, reuse=KERNEL_REUSE[name],
                        seed=seed * 53 + core_index)
