"""Closed-loop CMP substrate: cores + caches + memory over the NoC.

The mechanistic substitution for the paper's Simics-driven full-system
runs: address kernels -> real L1/L2 tag arrays -> directory protocol ->
network messages, with cores stalling on outstanding misses so network
latency feeds back into offered load.
"""

from repro.cmp.address import (
    KERNELS, Access, AddressStream, LockHotspotKernel, PointerChaseKernel,
    ProducerConsumerKernel, StreamingKernel, make_kernel,
)
from repro.cmp.caches import L1Cache, L2Bank, L2Line
from repro.cmp.system import CMPConfig, CMPSystem, CoreState

__all__ = [
    "Access",
    "AddressStream",
    "CMPConfig",
    "CMPSystem",
    "CoreState",
    "KERNELS",
    "L1Cache",
    "L2Bank",
    "L2Line",
    "LockHotspotKernel",
    "PointerChaseKernel",
    "ProducerConsumerKernel",
    "StreamingKernel",
    "make_kernel",
]
