"""B0 — simulator performance baseline (pytest-benchmark proper).

Unlike the figure benches (one-shot table generators), this one uses
pytest-benchmark's repeated timing to track the engine's simulation rate:
cycles per second on the full 10x10 mesh under moderate uniform load.  A
regression here makes every experiment slower, so it is worth a number.

Besides the human-readable assertion, the bench writes a machine-readable
``results/BENCH_b0.json`` — engine cycles/sec, wall time, and the result
store's hit/miss behavior on a one-cell sweep — so the performance
trajectory can be tracked across commits.
"""

from pathlib import Path

from repro.exec import ResultStore, run_sweep, sweep_grid
from repro.experiments import ExperimentConfig
from repro.experiments.export import save_json
from repro.noc.simulator import Simulator
from repro.params import SimulationParams
from repro.traffic import ProbabilisticTraffic

RESULTS_DIR = Path(__file__).parent / "results"

SIM = SimulationParams(warmup_cycles=0, measure_cycles=400, drain_cycles=0)

#: Short windows for the store-behavior probe (a one-cell sweep, run twice).
SWEEP_CONFIG = ExperimentConfig(
    sim=SimulationParams(warmup_cycles=100, measure_cycles=400,
                         drain_cycles=2_000),
    profile_cycles=2_000,
)


def test_b0_engine_throughput(benchmark, runner):
    design = runner.design("static", 16)

    def run_window():
        network = design.new_network()
        source = ProbabilisticTraffic(
            runner.topology, runner.patterns["uniform"], 0.02, seed=1
        )
        Simulator(network, [source], SIM).run()
        return network.cycle

    cycles = benchmark(run_window)
    assert cycles == 400
    # Sanity floor: the engine must stay above ~200 sim-cycles/second even
    # on slow machines (it runs ~1000+ on typical hardware).
    assert benchmark.stats["mean"] < 2.0

    # Machine-readable perf record: engine rate plus store behavior on a
    # one-cell sweep (second pass must be able to hit the cache).
    store = ResultStore(RESULTS_DIR / "cache")
    specs = sweep_grid(["baseline"], [16], ["uniform"])
    first = run_sweep(specs, config=SWEEP_CONFIG, store=store)
    second = run_sweep(specs, config=SWEEP_CONFIG, store=store)
    assert second.hits == 1 and second.misses == 0

    mean = benchmark.stats["mean"]
    save_json(
        {
            "bench": "B0",
            "engine": {
                "sim_cycles": cycles,
                "wall_s_mean": mean,
                "cycles_per_sec": cycles / mean,
            },
            "sweep": {
                "first": first.summary(),
                "warm": second.summary(),
                "store": store.stats.as_dict(),
            },
        },
        RESULTS_DIR / "BENCH_b0.json",
    )
    assert (RESULTS_DIR / "BENCH_b0.json").exists()
