"""B0 — simulator performance baseline (pytest-benchmark proper).

Unlike the figure benches (one-shot table generators), this one uses
pytest-benchmark's repeated timing to track the engine's simulation rate:
cycles per second on the full 10x10 mesh under moderate uniform load.  A
regression here makes every experiment slower, so it is worth a number.
"""

from repro.noc.simulator import Simulator
from repro.params import SimulationParams
from repro.traffic import ProbabilisticTraffic

SIM = SimulationParams(warmup_cycles=0, measure_cycles=400, drain_cycles=0)


def test_b0_engine_throughput(benchmark, runner):
    design = runner.design("static", 16)

    def run_window():
        network = design.new_network()
        source = ProbabilisticTraffic(
            runner.topology, runner.patterns["uniform"], 0.02, seed=1
        )
        Simulator(network, [source], SIM).run()
        return network.cycle

    cycles = benchmark(run_window)
    assert cycles == 400
    # Sanity floor: the engine must stay above ~200 sim-cycles/second even
    # on slow machines (it runs ~1000+ on typical hardware).
    assert benchmark.stats["mean"] < 2.0
