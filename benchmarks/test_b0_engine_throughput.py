"""B0 — simulator performance baseline (pytest-benchmark proper).

Unlike the figure benches (one-shot table generators), this one uses
pytest-benchmark's repeated timing to track the engine's simulation rate:
cycles per second on the full 10x10 mesh under moderate uniform load.  A
regression here makes every experiment slower, so it is worth a number.

Since the kernel split (``repro.noc.kernel``) the bench times every
registered kernel on the identical window: the default ``fast`` kernel
under pytest-benchmark (that is the number CI tracks and
``bench_smoke.py`` guards), plus best-of-N manual timings of the
``reference`` and ``batch`` kernels so the recorded speedups are
measured, not asserted from folklore.  Gates are honest: the fast kernel
must hold at least 1.5x the pre-refactor committed baseline, and the
struct-of-arrays batch kernel must hold at least 1.5x the reference
kernel measured in the same process (it lands around 2.2x ref / 1.3x
fast on typical hardware — the gate leaves room for box noise).

Besides the human-readable assertions, the bench writes a
machine-readable ``results/BENCH_b0.json`` — per-kernel cycles/sec, the
measured speedups, the batch kernel's per-stage wall-clock profile, and
the result store's hit/miss behavior on a one-cell sweep — so the
performance trajectory can be tracked across commits.
"""

import time
from pathlib import Path

from repro.exec import ResultStore, run_sweep, sweep_grid
from repro.experiments import ExperimentConfig
from repro.experiments.export import save_json
from repro.noc.simulator import Simulator
from repro.obs import StageProfile
from repro.params import SimulationParams
from repro.traffic import ProbabilisticTraffic

RESULTS_DIR = Path(__file__).parent / "results"

SIM = SimulationParams(warmup_cycles=0, measure_cycles=400, drain_cycles=0)

#: ``engine.cycles_per_sec`` committed in BENCH_b0.json before the kernel
#: extraction (the monolithic Network cycle loop, same machine class).
#: The fast kernel must beat it by at least this factor.
PRE_REFACTOR_CPS = 2270.7
REQUIRED_SPEEDUP = 1.5

#: The batch kernel must beat the reference kernel, timed in the same
#: process, by at least this factor (measured ~2.2x; gate absorbs noise).
REQUIRED_BATCH_VS_REFERENCE = 1.5

#: Short windows for the store-behavior probe (a one-cell sweep, run twice).
SWEEP_CONFIG = ExperimentConfig(
    sim=SimulationParams(warmup_cycles=100, measure_cycles=400,
                         drain_cycles=2_000),
    profile_cycles=2_000,
)


def _run_window(runner, design, kernel=None, stage_profile=None):
    """One B0 window (static 16 B design, uniform 0.02, seed 1)."""
    network = design.new_network(kernel=kernel)
    source = ProbabilisticTraffic(
        runner.topology, runner.patterns["uniform"], 0.02, seed=1
    )
    Simulator(network, [source], SIM, stage_profile=stage_profile).run()
    return network.cycle


def _best_of(n, runner, design, kernel):
    """Best-of-``n`` manual wall time of one window; (cycles, best_s)."""
    best = float("inf")
    cycles = 0
    for _ in range(n):
        start = time.perf_counter()
        cycles = _run_window(runner, design, kernel=kernel)
        best = min(best, time.perf_counter() - start)
    return cycles, best


def test_b0_engine_throughput(benchmark, runner):
    design = runner.design("static", 16)

    cycles = benchmark(lambda: _run_window(runner, design))
    assert cycles == 400
    # Sanity floor: the engine must stay above ~200 sim-cycles/second even
    # on slow machines (it runs ~1000+ on typical hardware).
    assert benchmark.stats["mean"] < 2.0
    mean = benchmark.stats["mean"]
    fast_cps = cycles / mean

    # Reference and batch kernels on the identical window, best-of-3
    # manual timing (pytest-benchmark owns only one timer per test).
    ref_cycles, ref_best = _best_of(3, runner, design, "reference")
    assert ref_cycles == 400
    ref_cps = ref_cycles / ref_best

    batch_cycles, batch_best = _best_of(3, runner, design, "batch")
    assert batch_cycles == 400
    batch_cps = batch_cycles / batch_best

    speedup_vs_committed = fast_cps / PRE_REFACTOR_CPS
    batch_vs_ref = batch_cps / ref_cps

    # Where the batch kernel's cycle time goes (one profiled window;
    # timed stepping costs ~15-20%, so this run is not the rate record).
    profile = StageProfile()
    _run_window(runner, design, kernel="batch", stage_profile=profile)
    assert profile.cycles == 400

    # Machine-readable perf record: engine rate plus store behavior on a
    # one-cell sweep (second pass must be able to hit the cache).
    store = ResultStore(RESULTS_DIR / "cache")
    specs = sweep_grid(["baseline"], [16], ["uniform"])
    first = run_sweep(specs, config=SWEEP_CONFIG, store=store)
    second = run_sweep(specs, config=SWEEP_CONFIG, store=store)
    assert second.hits == 1 and second.misses == 0

    save_json(
        {
            "bench": "B0",
            "engine": {
                "kernel": "fast",
                "sim_cycles": cycles,
                "wall_s_mean": mean,
                "cycles_per_sec": fast_cps,
            },
            "engine_reference": {
                "kernel": "reference",
                "sim_cycles": ref_cycles,
                "wall_s_best": ref_best,
                "cycles_per_sec": ref_cps,
            },
            "engine_batch": {
                "kernel": "batch",
                "sim_cycles": batch_cycles,
                "wall_s_best": batch_best,
                "cycles_per_sec": batch_cps,
                "stage_profile": profile.as_dict(),
            },
            "speedup": {
                "fast_vs_reference": fast_cps / ref_cps,
                "fast_vs_pre_refactor": speedup_vs_committed,
                "batch_vs_reference": batch_vs_ref,
                "batch_vs_fast": batch_cps / fast_cps,
                "pre_refactor_cycles_per_sec": PRE_REFACTOR_CPS,
            },
            "sweep": {
                "first": first.summary(),
                "warm": second.summary(),
                "store": store.stats.as_dict(),
            },
        },
        RESULTS_DIR / "BENCH_b0.json",
    )
    assert (RESULTS_DIR / "BENCH_b0.json").exists()

    # Gates last, so the honest measurement record survives a trip: the
    # absolute fast-kernel gate (vs the committed pre-refactor rate) and
    # the relative batch gate (vs the reference timed in this process —
    # immune to machine-class drift).
    assert speedup_vs_committed >= REQUIRED_SPEEDUP, (
        f"fast kernel at {fast_cps:,.0f} c/s is only "
        f"{speedup_vs_committed:.2f}x the pre-refactor baseline "
        f"({PRE_REFACTOR_CPS:,.0f} c/s); need {REQUIRED_SPEEDUP}x"
    )
    assert batch_vs_ref >= REQUIRED_BATCH_VS_REFERENCE, (
        f"batch kernel at {batch_cps:,.0f} c/s is only "
        f"{batch_vs_ref:.2f}x the reference kernel "
        f"({ref_cps:,.0f} c/s); need {REQUIRED_BATCH_VS_REFERENCE}x"
    )
