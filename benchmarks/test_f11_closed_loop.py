"""F11 (extension) — the closed-loop, CMP-level bottom line.

The paper's evaluation is open-loop: traces are injected regardless of how
the network responds.  This experiment closes the loop with the
:mod:`repro.cmp` substrate (real L1/L2 tag arrays, directory protocol,
MSHR-limited cores) and asks the question the architecture ultimately
answers: *does the 4 B mesh + adaptive RF-I preserve application
throughput (IPC) at a fraction of the power?*

Two regimes:

* **light demand** (paper-like loads): adaptive-4B recovers nearly all of
  the IPC the bare 4 B mesh loses — the paper's thesis, confirmed with
  feedback;
* **heavy demand**: every 4 B design is bandwidth-bound; adaptive RF-I
  still beats the bare 4 B mesh (it cannot add aggregate bandwidth).  An
  honest boundary the open-loop study cannot see.
"""

from repro.cmp import CMPConfig, CMPSystem
from repro.core import adaptive_rf, baseline
from repro.experiments.report import Table

KERNEL = "pointer_chase"
WARM_ACCESSES = 3_000
CYCLES = 4_000


def run_system(design, mem_ratio):
    network = design.new_network()
    system = CMPSystem(network, CMPConfig(kernel=KERNEL, mem_ratio=mem_ratio))
    system.warm_caches(WARM_ACCESSES)
    for _ in range(CYCLES):
        system.tick(network)
        network.step()
    return system.report(network.cycle)


def collect_profile(runner, mem_ratio):
    network = baseline(16, runner.params, runner.topology).new_network()
    system = CMPSystem(network, CMPConfig(kernel=KERNEL, mem_ratio=mem_ratio))
    system.warm_caches(WARM_ACCESSES)
    for _ in range(2_000):
        system.tick(network)
        network.step()
    return system.profile_matrix()


def run_regimes(runner):
    table = Table(
        "F11 — closed-loop CMP (pointer_chase kernel)",
        ["regime", "design", "IPC", "load latency", "stall fraction"],
    )
    series = {}
    for regime, mem_ratio in (("light", 0.03), ("heavy", 0.15)):
        profile = collect_profile(runner, mem_ratio)
        designs = [
            baseline(16, runner.params, runner.topology),
            baseline(4, runner.params, runner.topology),
            adaptive_rf(profile, 4, 50, runner.params, runner.topology),
        ]
        for design in designs:
            report = run_system(design, mem_ratio)
            series[(regime, design.name)] = report
            table.add(regime, design.name, report["ipc"],
                      report["avg_load_latency"], report["stall_fraction"])
    table.note("light regime: adaptive-4B ~ baseline-16B IPC at ~45% power; "
               "heavy regime: 4B is bandwidth-bound, RF-I helps latency only")
    return table, series


def test_f11_closed_loop(benchmark, runner, save_result):
    table, series = benchmark.pedantic(
        lambda: run_regimes(runner), rounds=1, iterations=1
    )

    class _Result:
        experiment = "F11"

        @staticmethod
        def render():
            return table.render()

    save_result(_Result())

    light16 = series[("light", "baseline-16B")]
    light4 = series[("light", "baseline-4B")]
    light_rf = series[("light", "adaptive50-4B")]
    # Light demand: the adaptive overlay recovers most of the IPC the
    # narrow mesh loses, landing within 2% of the 16B baseline.
    assert light_rf["ipc"] > light4["ipc"]
    assert light_rf["ipc"] > 0.98 * light16["ipc"]
    assert light_rf["avg_load_latency"] < light4["avg_load_latency"]

    heavy16 = series[("heavy", "baseline-16B")]
    heavy4 = series[("heavy", "baseline-4B")]
    heavy_rf = series[("heavy", "adaptive50-4B")]
    # Heavy demand: RF-I helps but cannot replace aggregate bandwidth.
    assert heavy_rf["ipc"] > heavy4["ipc"]
    assert heavy_rf["ipc"] < 0.8 * heavy16["ipc"]
