"""Campaign-tier benchmark: resume cost and warm replay.

Runs one 8-cell campaign (tiny simulation windows, throwaway store)
through :func:`repro.campaign.run_campaign` three ways:

* **interrupted** — stopped at the first chunk boundary (``max_chunks=1``),
  the way a killed process would leave the manifest;
* **resumed** — the same campaign directory re-invoked; the bench fails
  unless the resume carries every checkpointed cell and re-simulates
  *only* the pending ones (zero store hits, zero recomputation);
* **warm** — a fresh campaign directory over the now-full store; the
  bench fails unless every cell is answered warm.

Records cold/warm wall time, the warm-hit rate, and the Pareto frontier
size into ``results/BENCH_campaign.json`` — the committed history the
campaign trend report compares against.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.campaign import CampaignSpec, run_campaign
from repro.exec import ResultStore
from repro.experiments import ExperimentConfig
from repro.params import SimulationParams

RESULTS_DIR = Path(__file__).parent / "results"

#: Tiny windows, same scale as bench_serve: a cold cell takes ~1 s.
BENCH_CONFIG = ExperimentConfig(
    sim=SimulationParams(warmup_cycles=50, measure_cycles=200,
                         drain_cycles=1_500),
    profile_cycles=1_000,
)

SPEC = CampaignSpec(
    name="bench-campaign",
    styles=("baseline", "static"),
    widths=(16, 8),
    workloads=("uniform", "1Hotspot"),
    chunk=4,
)


def run_bench(root: Path) -> dict:
    cache = root / "cache"

    interrupted = run_campaign(SPEC, config=BENCH_CONFIG,
                               store=ResultStore(cache),
                               directory=root / "campaign", max_chunks=1)
    resume_store = ResultStore(cache)
    resumed = run_campaign(SPEC, config=BENCH_CONFIG, store=resume_store,
                           directory=root / "campaign")
    warm_store = ResultStore(cache)
    warm = run_campaign(SPEC, config=BENCH_CONFIG, store=warm_store,
                        directory=root / "campaign-warm")

    cells = len(resumed.cells)
    cold_wall_s = interrupted.wall_s + resumed.wall_s
    return {
        "bench": "campaign",
        "config": {
            "chunk": SPEC.chunk,
            "warmup_cycles": BENCH_CONFIG.sim.warmup_cycles,
            "measure_cycles": BENCH_CONFIG.sim.measure_cycles,
        },
        "cells": cells,
        "cold_wall_s": cold_wall_s,
        "warm_wall_s": warm.wall_s,
        "speedup_warm": (cold_wall_s / warm.wall_s) if warm.wall_s else None,
        "interrupted": {"status": interrupted.status,
                        "cold": interrupted.cold,
                        "pending": interrupted.pending},
        "resumed": {"status": resumed.status, "carried": resumed.carried,
                    "cold": resumed.cold,
                    "store": vars(resume_store.stats).copy()},
        "warm": {"status": warm.status, "warm": warm.warm,
                 "cold": warm.cold},
        "rates": {"warm_hit": warm.warm / cells if cells else 0.0},
        "cycles_per_sec": (resumed.sim_cycles / resumed.sim_wall_s
                           if resumed.sim_wall_s else None),
        "pareto_size": len(warm.pareto()),
    }


def check(report: dict) -> list[str]:
    """The bench's pass/fail claims; returns failure messages."""
    failures = []
    interrupted = report["interrupted"]
    if interrupted["status"] != "running" or interrupted["pending"] == 0:
        failures.append(f"interruption did not leave pending work: "
                        f"{interrupted}")
    resumed = report["resumed"]
    if resumed["status"] != "done":
        failures.append(f"resume did not finish: {resumed}")
    if resumed["carried"] != interrupted["cold"]:
        failures.append(
            f"resume carried {resumed['carried']} cells, expected the "
            f"{interrupted['cold']} checkpointed before the kill")
    if resumed["store"]["hits"] or (
            resumed["store"]["writes"] != interrupted["pending"]):
        failures.append(
            f"resume was not zero-recomputation: {resumed['store']}")
    warm = report["warm"]
    if warm["cold"] or warm["warm"] != report["cells"]:
        failures.append(f"warm replay simulated cells: {warm}")
    if not report["pareto_size"]:
        failures.append("empty Pareto frontier")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=RESULTS_DIR / "BENCH_campaign.json")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-campaign-") as tmp:
        report = run_bench(Path(tmp))
    failures = check(report)
    report["passed"] = not failures

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"bench_campaign: {report['cells']} cells cold in "
          f"{report['cold_wall_s']:.1f}s, warm replay "
          f"{report['warm_wall_s']:.2f}s "
          f"({report['rates']['warm_hit']:.0%} warm), "
          f"frontier {report['pareto_size']}")
    print(f"  resume: carried {report['resumed']['carried']}, "
          f"re-simulated {report['resumed']['cold']}, "
          f"store {report['resumed']['store']}")
    print(f"  wrote {args.out}")
    for failure in failures:
        print(f"  FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
