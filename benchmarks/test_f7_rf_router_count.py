"""F7 (Fig 7) — static vs adaptive-50 vs adaptive-25 RF-enabled routers.

Published means (normalized to the 16 B baseline): static shortcuts 0.80
latency / 1.11 power; adaptive with 50 access points 0.68 / 1.24; adaptive
with 25 access points 0.72 / 1.15.
"""

from repro.experiments import fig7_rf_router_count


def test_f7_rf_router_count(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig7_rf_router_count(runner), rounds=1, iterations=1
    )
    save_result(result)
    s = result.series
    static_lat = s["static"]["mean_latency"]
    ad50_lat = s["adaptive50"]["mean_latency"]
    ad25_lat = s["adaptive25"]["mean_latency"]
    static_pwr = s["static"]["mean_power"]
    ad50_pwr = s["adaptive50"]["mean_power"]
    ad25_pwr = s["adaptive25"]["mean_power"]
    # Everyone beats the baseline on latency, in the paper's ballpark.
    assert 0.65 <= static_lat <= 0.92
    assert ad50_lat <= static_lat
    # Power ordering matches the paper: baseline < static < ad25 < ad50.
    assert 1.0 < static_pwr < ad25_pwr < ad50_pwr < 1.40
    # Adaptive-25 trades a little flexibility for a lot of power.
    assert ad25_lat <= static_lat
    # Hotspot traces benefit most from adaptation (the paper's observation).
    hot_gain = s["adaptive50"]["latency"]["1Hotspot"]
    uni_static = s["static"]["latency"]["1Hotspot"]
    assert hot_gain <= uni_static
