"""E1b — saturation throughput: where does each design stop keeping up?

Complements E1's load-latency curves with the scalar the 2008 paper's
evaluation implies: shortcut overlays must not *reduce* the sustainable
load, and with adaptive routing the shortcut network should sustain at
least as much as deterministic routing (the contention knee of E2 moves
outward).
"""

from repro.experiments.report import Table
from repro.experiments.saturation import find_saturation
from repro.noc import Network, RoutingPolicy


def run_saturation(runner):
    table = Table(
        "E1b — saturation rate (uniform, latency <= 2x zero-load)",
        ["design", "zero-load lat", "saturation rate", "latency there"],
    )
    results = {}
    base = find_saturation(runner, runner.design("baseline", 16))
    results["baseline"] = base

    static = runner.design("static", 16)
    results["static-det"] = find_saturation(runner, static)

    import dataclasses

    adaptive_static = dataclasses.replace(
        static, name="static-adaptive-routing",
        policy=RoutingPolicy(adaptive=True),
    )
    results["static-ada"] = find_saturation(runner, adaptive_static)

    for key, res in results.items():
        table.add(key, res.zero_load_latency, res.saturation_rate,
                  res.latency_at_saturation)
    table.note("adaptive routing must sustain >= deterministic routing")
    return table, results


def test_e1b_saturation(benchmark, runner, save_result):
    table, results = benchmark.pedantic(
        lambda: run_saturation(runner), rounds=1, iterations=1
    )

    class _Result:
        experiment = "E1b"

        @staticmethod
        def render():
            return table.render()

    save_result(_Result())
    base = results["baseline"]
    det = results["static-det"]
    ada = results["static-ada"]
    # Shortcuts lower zero-load latency...
    assert det.zero_load_latency < base.zero_load_latency
    # ...and adaptive routing sustains at least the deterministic rate.
    assert ada.saturation_rate >= det.saturation_rate - 0.005
    # Every design sustains a sane minimum load.
    for res in results.values():
        assert res.saturation_rate > 0.03
