"""Shared fixtures for the benchmark suite.

A single session-scoped :class:`ExperimentRunner` is shared by every bench
so design points and simulation results are computed once (Fig 7 is the
16 B column of Fig 8; Fig 10 replots both).  Each bench renders its
paper-vs-measured table to stdout *and* to ``benchmarks/results/<id>.txt``
so the tables survive pytest's output capture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, ExperimentRunner
from repro.params import SimulationParams

RESULTS_DIR = Path(__file__).parent / "results"

#: Bench-speed settings: shorter windows than the library default, long
#: enough for stable steady-state averages on a 10x10 mesh.
BENCH_CONFIG = ExperimentConfig(
    sim=SimulationParams(
        warmup_cycles=300, measure_cycles=1_200, drain_cycles=10_000
    ),
    profile_cycles=10_000,
)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    return ExperimentRunner(BENCH_CONFIG)


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        text = result.render()
        print()
        print(text)
        path = RESULTS_DIR / f"{result.experiment.lower()}.txt"
        path.write_text(text + "\n")

    return _save
