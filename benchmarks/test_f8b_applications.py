"""F8b — the real-application claim of Section 5.1.2.

"For our real application traces, on average we save 67% power including
the overhead incurred for RF-I for our adaptive architecture on a 4B mesh;
while maintaining network latency on average that is comparable to the
baseline at a 16B mesh."

Run on the statistical application models (the documented Simics-trace
substitution).  Power savings reproduce; latency is comparable for the
non-local applications, while the strongly local ones (bodytrack,
fluidanimate) pay a serialization penalty at 4 B that shortcuts cannot
remove — their traffic is 1-3 hops of data messages, which widen from 3 to
10 flits.  That finding is recorded rather than hidden.
"""

from repro.experiments.report import Table
from repro.traffic import APPLICATION_NAMES


def run_apps(runner):
    table = Table(
        "F8b — applications: adaptive-4B vs baseline-16B",
        ["application", "latency ratio", "power ratio"],
    )
    series = {}
    for app in APPLICATION_NAMES:
        base = runner.run_unicast(runner.design("baseline", 16), app)
        rf = runner.run_unicast(runner.design("adaptive", 4, workload=app), app)
        lat = rf.avg_latency / base.avg_latency
        pwr = rf.total_power_w / base.total_power_w
        series[app] = {"latency": lat, "power": pwr}
        table.add(app, lat, pwr)
    table.note("paper: ~67% average power saving at comparable latency")
    return table, series


def test_f8b_applications(benchmark, runner, save_result):
    table, series = benchmark.pedantic(
        lambda: run_apps(runner), rounds=1, iterations=1
    )

    class _Result:
        experiment = "F8b"

        @staticmethod
        def render():
            return table.render()

    save_result(_Result())
    # Power savings hold for every application (paper: 67% average; our RF
    # bias model is a little more expensive — see EXPERIMENTS.md).
    for app, row in series.items():
        assert row["power"] < 0.55, app
    # Non-local applications keep latency close to the 16B baseline.
    for app in ("x264", "specjbb", "streamcluster"):
        assert series[app]["latency"] < 1.35, app
    # Local applications are serialization-bound at 4B — a real finding,
    # bounded here so regressions surface.
    for app in ("bodytrack", "fluidanimate"):
        assert series[app]["latency"] < 2.2, app
