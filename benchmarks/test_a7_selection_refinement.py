"""A7 (ablation) — how far is greedy selection from a 1-swap local optimum?

The paper uses the cheap greedy heuristic after finding it comparable to
the exhaustive permutation-graph one.  This ablation measures the remaining
headroom directly: exact 1-swap local search on the greedy set.  A small
gap justifies the greedy choice for the runtime reconfiguration path.
"""

from repro.experiments.report import Table
from repro.shortcuts import (
    SelectionConfig, objective, refine_shortcuts,
    select_architecture_shortcuts,
)


def test_a7_refinement_headroom(benchmark, runner, save_result):
    topo = runner.topology
    config = SelectionConfig(budget=8)

    def run():
        greedy = select_architecture_shortcuts(topo, config)
        before = objective(topo, greedy)
        refined, after = refine_shortcuts(topo, greedy, config, max_passes=1)
        return greedy, before, refined, after

    greedy, before, refined, after = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    table = Table(
        "A7 — 1-swap local-search headroom over greedy (budget 8)",
        ["selection", "objective", "gap"],
    )
    table.add("greedy", before, "-")
    table.add("1-swap refined", after, f"{(before - after) / before:.2%}")

    class _Result:
        experiment = "A7"

        @staticmethod
        def render():
            return table.render()

    save_result(_Result())
    assert after <= before
    # Greedy leaves single-digit-percent headroom to its 1-swap local
    # optimum (measured ~6% at budget 8) — consistent with the paper's
    # "comparably well" and far from changing any design conclusion.
    assert (before - after) / before < 0.10
    assert len(refined) == len(greedy)
