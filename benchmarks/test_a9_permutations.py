"""A9 (ablation) — adversarial permutation workloads.

The classic synthetics (transpose, bit-complement, shuffle) concentrate
traffic on specific cuts of the mesh.  Application-specific selection sees
the permutation in the profile and places shortcuts directly on the heavy
pairs, so its advantage over architecture-specific (distance-only)
selection should be *largest* here — the sharpest demonstration of why
adapting to F(x, y) matters.
"""

from repro.experiments.report import Table
from repro.noc import Network, RoutingTables
from repro.noc.simulator import Simulator
from repro.shortcuts import (
    SelectionConfig, select_application_shortcuts,
    select_architecture_shortcuts,
)
from repro.traffic import ProbabilisticTraffic
from repro.traffic.permutations import all_permutations

RATE = 0.02


def run_permutations(runner):
    topo = runner.topology
    table = Table(
        "A9 — synthetic permutations (latency, 16B mesh)",
        ["pattern", "baseline", "static", "app-specific", "app vs static"],
    )
    series = {}
    static_sc = select_architecture_shortcuts(topo, SelectionConfig(budget=16))
    for name, pattern in all_permutations(topo).items():
        profile = ProbabilisticTraffic(
            topo, pattern, RATE, seed=runner.config.seed
        ).collect_profile(runner.config.profile_cycles)
        app_sc = select_application_shortcuts(
            topo, profile, SelectionConfig(budget=16)
        )
        lat = {}
        for key, shortcuts in (("baseline", []), ("static", static_sc),
                               ("app", app_sc)):
            network = Network(topo, runner.params,
                              RoutingTables(topo, shortcuts))
            source = ProbabilisticTraffic(
                topo, pattern, RATE, seed=runner.config.traffic_seed
            )
            stats = Simulator(network, [source], runner.config.sim).run()
            lat[key] = stats.avg_packet_latency
        series[name] = lat
        table.add(name, lat["baseline"], lat["static"], lat["app"],
                  lat["static"] / lat["app"])
    table.note("profile-aware shortcuts nail one-hot destination sets")
    return table, series


def test_a9_permutations(benchmark, runner, save_result):
    table, series = benchmark.pedantic(
        lambda: run_permutations(runner), rounds=1, iterations=1
    )

    class _Result:
        experiment = "A9"

        @staticmethod
        def render():
            return table.render()

    save_result(_Result())
    for name, lat in series.items():
        # Application-specific selection beats the baseline everywhere...
        assert lat["app"] < lat["baseline"], name
        # ...and never loses to distance-only static shortcuts.
        assert lat["app"] <= lat["static"] * 1.03, name
    # On transpose the profile-aware advantage over static is substantial.
    assert series["transpose"]["app"] < series["transpose"]["static"] * 0.95
