"""A4 (ablation) — multicast arbitration epoch length.

The paper's coarse-grained arbitration gives one cache-bank cluster the
multicast band "for some fixed amount of time" without quantifying it.
Short epochs keep RF multicast well ahead of serial unicasts; very long
epochs hand the advantage back.
"""

from repro.experiments.ablations import a4_multicast_epoch


def test_a4_multicast_epoch(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: a4_multicast_epoch(runner), rounds=1, iterations=1
    )
    save_result(result)
    s = result.series
    # Latency is non-decreasing in epoch length.
    assert s[2] <= s[8] * 1.03
    assert s[8] <= s[32] * 1.03
    # At the short end, RF multicast beats the serial-unicast baseline.
    assert s[2] < s["unicast"]
