"""Control-plane benchmark: decision latency, epoch overhead, loop win.

Three claims, measured end to end through :mod:`repro.control`:

* **decision latency** — wall time of one ingest-to-decision pass
  (:class:`ShortcutDecider` over a live traffic matrix), the budget the
  serve tier's ``POST /v1/control`` pays per request;
* **epoch overhead** — simulated cycles the closed loop charges against
  live traffic per applied reconfiguration (drain + tuning + table
  update), read back from the decision journal;
* **closed-loop win** — the O1 acceptance run: on a three-phase
  workload the closed loop, paying every overhead cycle it causes,
  must beat the best single static placement.  The O1 decision journal
  is written next to the report so the exact decision sequence behind
  the headline number is committed with it.

Also verifies decision determinism: two fresh closed-loop runs of the
same (seed, profile stream) must produce identical journal digests.

Records everything into ``results/BENCH_control.json`` and the O1
journal into ``results/BENCH_control_journal.jsonl``.

Usage::

    PYTHONPATH=src python benchmarks/bench_control.py [--out FILE]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.control import DecisionJournal, ShortcutDecider, run_closed_loop
from repro.experiments import (
    ExperimentRunner, FAST_CONFIG, o1_closed_loop_vs_static,
)
from repro.noc import MeshTopology
from repro.params import MeshParams, SimulationParams

RESULTS_DIR = Path(__file__).parent / "results"

#: Short-window config for the determinism/overhead runs (the O1 run
#: brings its own dedicated windows via the experiment module).
FAST_LOOP_CONFIG = dataclasses.replace(
    FAST_CONFIG,
    sim=SimulationParams(warmup_cycles=200, measure_cycles=2_400,
                         drain_cycles=6_000),
)
FAST_SPEC = "epoch=600,min=20"
FAST_WORKLOAD = "phased:hotBiDF+uniDF@1000"


def bench_decision_latency(repeats: int = 30) -> dict:
    """Wall time per decide() call, cold (placement moves) and warm."""
    topo = MeshTopology(MeshParams())
    decider = ShortcutDecider(topo, topo.rf_enabled_routers(50), budget=16)
    rng = np.random.default_rng(7)
    matrix = rng.random((topo.num_routers, topo.num_routers))
    matrix[3, 96] = matrix[7, 92] = matrix[40, 59] = 50.0
    current = decider.decide(matrix, ()).shortcuts
    cold_ms, warm_ms = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        decider.decide(matrix, ())
        cold_ms.append((time.perf_counter() - start) * 1e3)
        start = time.perf_counter()
        decision = decider.decide(matrix, current)
        warm_ms.append((time.perf_counter() - start) * 1e3)
    return {
        "repeats": repeats,
        "cold_decide_ms": statistics.median(cold_ms),
        "warm_decide_ms": statistics.median(warm_ms),
        "warm_reason": decision.reason,
    }


def bench_epoch_overhead_and_determinism() -> dict:
    """Per-epoch charged cycles + journal-digest determinism check."""
    first = run_closed_loop(ExperimentRunner(FAST_LOOP_CONFIG),
                            FAST_WORKLOAD, control=FAST_SPEC)
    second = run_closed_loop(ExperimentRunner(FAST_LOOP_CONFIG),
                             FAST_WORKLOAD, control=FAST_SPEC)
    summary = first.summary()
    applied = summary["applied"]
    return {
        "workload": FAST_WORKLOAD,
        "control": first.control.canonical(),
        "applied": applied,
        "skipped": summary["skipped"],
        "overhead_cycles": summary["overhead_cycles"],
        "overhead_cycles_per_applied_epoch": (
            summary["overhead_cycles"] / applied if applied else None),
        "journal_digest": first.journal_digest,
        "deterministic": first.journal_digest == second.journal_digest,
    }


def bench_closed_loop_win(journal_out: Path) -> dict:
    """The O1 acceptance run; writes its decision journal to disk."""
    start = time.perf_counter()
    fig = o1_closed_loop_vs_static(ExperimentRunner(FAST_CONFIG))
    wall_s = time.perf_counter() - start
    journal = DecisionJournal.from_dicts(fig.series["decisions"])
    journal.write_jsonl(journal_out)
    return {
        "workload": fig.series["workload"],
        "control": fig.series["control"],
        "closed_loop_latency": fig.series["closed_loop_latency"],
        "static_latencies": fig.series["static_latencies"],
        "best_static": fig.series["best_static"],
        "margin": fig.series["margin"],
        "journal": fig.series["journal"],
        "closed_loop_beats_best_static":
            fig.paper["closed_loop_beats_best_static"],
        "journal_file": journal_out.name,
        "wall_s": wall_s,
    }


def check(report: dict) -> list[str]:
    """The bench's pass/fail claims; returns failure messages."""
    failures = []
    latency = report["decision_latency"]
    if not 0 < latency["cold_decide_ms"] < 10_000:
        failures.append(f"implausible decide() latency: {latency}")
    if latency["warm_decide_ms"] > latency["cold_decide_ms"] * 2:
        failures.append(f"warm decide slower than cold: {latency}")
    epoch = report["epoch_overhead"]
    if epoch["applied"] < 1 or epoch["skipped"] < 1:
        failures.append(f"loop did not both apply and skip: {epoch}")
    if not epoch["deterministic"]:
        failures.append("journal digest differs between identical runs")
    win = report["closed_loop"]
    if not win["closed_loop_beats_best_static"]:
        failures.append(
            f"closed loop ({win['closed_loop_latency']:.3f}) lost to "
            f"static[{win['best_static']['placement']}] "
            f"({win['best_static']['latency']:.3f})")
    if win["journal"]["applied"] < 1:
        failures.append("O1 journal has no applied decisions")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path,
                        default=RESULTS_DIR / "BENCH_control.json")
    parser.add_argument("--journal", type=Path,
                        default=RESULTS_DIR / "BENCH_control_journal.jsonl")
    args = parser.parse_args(argv)

    args.out.parent.mkdir(parents=True, exist_ok=True)
    report = {
        "bench": "control",
        "decision_latency": bench_decision_latency(),
        "epoch_overhead": bench_epoch_overhead_and_determinism(),
        "closed_loop": bench_closed_loop_win(args.journal),
    }
    failures = check(report)
    report["passed"] = not failures

    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    latency = report["decision_latency"]
    epoch = report["epoch_overhead"]
    win = report["closed_loop"]
    print(f"bench_control: decide {latency['cold_decide_ms']:.1f}ms cold / "
          f"{latency['warm_decide_ms']:.1f}ms warm, "
          f"{epoch['overhead_cycles_per_applied_epoch']:.0f} "
          f"cycles/applied epoch, deterministic={epoch['deterministic']}")
    print(f"  O1: closed loop {win['closed_loop_latency']:.3f} vs best "
          f"static {win['best_static']['latency']:.3f} "
          f"(margin {win['margin']:.3f}, "
          f"{win['journal']['applied']} applied / "
          f"{win['journal']['skipped']} skipped) in {win['wall_s']:.0f}s")
    for failure in failures:
        print(f"  FAIL: {failure}")
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
