"""A5 (ablation) — virtual-channel count sensitivity of the substrate.

A correctness check on the Garnet-equivalent itself: at elevated load,
adding VCs relieves head-of-line blocking, so latency must not degrade as
VC count rises (and typically improves 2 -> 4).
"""

from repro.experiments.ablations import a5_router_buffers


def test_a5_router_buffers(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: a5_router_buffers(runner), rounds=1, iterations=1
    )
    save_result(result)
    s = result.series
    assert s[4]["latency"] <= s[2]["latency"] * 1.02
    assert s[8]["latency"] <= s[4]["latency"] * 1.05
    for row in s.values():
        assert row["delivery"] > 0.95
