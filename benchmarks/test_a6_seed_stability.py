"""A6 (methodology) — seed stability of the shortened measurement windows.

The paper runs each probabilistic trace for one million cycles; this
reproduction uses far shorter windows, so this bench verifies the windows
are long enough: across independent traffic seeds the measured latency and
power vary by well under the effect sizes the figures report, and the
baseline-vs-static comparison holds for every seed individually.
"""

from repro.experiments.repetition import seed_stability


def test_a6_seed_stability(benchmark, runner):
    runs = benchmark.pedantic(
        lambda: seed_stability(runner, "uniform", seeds=(5, 17, 29)),
        rounds=1, iterations=1,
    )
    base, static = runs["baseline"], runs["static"]
    print()
    for name, run in runs.items():
        print(
            f"{name:<9} latency {run.latency.mean:6.2f} "
            f"+- {run.latency.std:4.2f} (cv {run.latency.cv:.3f})  "
            f"power {run.power_w.mean:6.2f} +- {run.power_w.std:4.2f}"
        )
    # Latency noise is far below the ~20% static-shortcut effect size.
    assert base.latency.cv < 0.03
    assert static.latency.cv < 0.03
    # Power is dominated by deterministic leakage: even tighter.
    assert base.power_w.cv < 0.02
    # The comparison holds seed by seed, not just on average.
    for b, s in zip(base.latency.values, static.latency.values):
        assert s < b
