"""F8 (Fig 8) — mesh link-width reduction with RF-I compensation.

Published means (vs the 16 B baseline): 8 B baseline +4% latency / -48%
power; 4 B baseline +27% / -72%; static-4B +11% / -67%; adaptive-4B about
-1% latency / -62% power, with hotspot traces gaining up to 13%.
"""

from repro.experiments import fig8_bandwidth_reduction


def test_f8_bandwidth_reduction(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig8_bandwidth_reduction(runner), rounds=1, iterations=1
    )
    save_result(result)
    mean = {key: cells["mean"] for key, cells in result.series.items()}

    # Power collapses with link width (the paper's headline lever).
    assert 0.40 <= mean[("baseline", 8)][1] <= 0.62
    assert 0.22 <= mean[("baseline", 4)][1] <= 0.36
    # Narrow links cost latency on the bare mesh...
    assert mean[("baseline", 8)][0] > 1.0
    assert mean[("baseline", 4)][0] > mean[("baseline", 8)][0]
    # ...static shortcuts claw much of it back...
    assert mean[("static", 4)][0] < mean[("baseline", 4)][0]
    # ...and adaptive shortcuts close most of the remaining gap while still
    # saving more than half the NoC power.
    assert mean[("adaptive", 4)][0] < mean[("static", 4)][0]
    assert mean[("adaptive", 4)][0] <= 1.12
    assert mean[("adaptive", 4)][1] <= 0.50

    # Hotspot traces benefit the most from adaptation at 4 B (paper: the
    # adaptive 4 B mesh beats even the 16 B baseline by up to 13% there).
    hotspot_lat = min(
        result.series[("adaptive", 4)][t][0]
        for t in ("1Hotspot", "2Hotspot", "4Hotspot")
    )
    dataflow_lat = result.series[("adaptive", 4)]["biDF"][0]
    assert hotspot_lat < dataflow_lat
