"""Bench smoke: fail if the B0 hot path regressed vs the committed baseline.

Re-times the exact B0 window (static 16 B design, uniform load 0.02,
seed 1, 400 measured cycles, tracing off) with best-of-N manual timing and
compares ``cycles_per_sec`` against the ``engine.cycles_per_sec`` recorded
in the committed ``results/BENCH_b0.json``.  Exits 1 when the current rate
falls more than ``--threshold`` (default 20%) below the baseline — the
cheap CI tripwire between full pytest-benchmark runs, and the guard that
keeps observability instrumentation off the tracing-off hot path.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py [--repeats N]
        [--threshold FRACTION] [--baseline FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import ExperimentRunner, FAST_CONFIG
from repro.noc import Simulator
from repro.params import SimulationParams
from repro.traffic import ProbabilisticTraffic

RESULTS_DIR = Path(__file__).parent / "results"

#: The B0 measurement window (must match test_b0_engine_throughput.SIM).
SIM = SimulationParams(warmup_cycles=0, measure_cycles=400, drain_cycles=0)


def measure(repeats: int, kernel: str = "fast") -> tuple[int, float]:
    """Best-of-``repeats`` wall time of one B0 window; returns (cycles, s)."""
    runner = ExperimentRunner(FAST_CONFIG)
    design = runner.design("static", 16)
    best = float("inf")
    cycles = 0
    for _ in range(repeats):
        network = design.new_network(kernel=kernel)
        source = ProbabilisticTraffic(
            runner.topology, runner.patterns["uniform"], 0.02, seed=1
        )
        start = time.perf_counter()
        Simulator(network, [source], SIM).run()
        best = min(best, time.perf_counter() - start)
        cycles = network.cycle
    return cycles, best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repetitions (best-of)")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="allowed fractional slowdown vs the baseline")
    parser.add_argument("--baseline", type=Path,
                        default=RESULTS_DIR / "BENCH_b0.json",
                        help="committed BENCH_b0.json to compare against")
    parser.add_argument("--kernel", choices=("fast", "reference", "batch"),
                        default="fast",
                        help="execution kernel to time (default: fast)")
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    key = {"fast": "engine", "reference": "engine_reference",
           "batch": "engine_batch"}[args.kernel]
    target = baseline.get(key, baseline["engine"])["cycles_per_sec"]

    cycles, wall = measure(args.repeats, kernel=args.kernel)
    if cycles != SIM.measure_cycles:
        print(f"FAIL: window ran {cycles} cycles, expected "
              f"{SIM.measure_cycles}", file=sys.stderr)
        return 1
    rate = cycles / wall
    floor = target * (1.0 - args.threshold)
    verdict = "ok" if rate >= floor else "REGRESSION"
    print(f"B0 smoke [{args.kernel}]: {rate:,.0f} sim cycles/s "
          f"(baseline {target:,.0f}, floor {floor:,.0f}, "
          f"best of {args.repeats}) -> {verdict}")
    if rate < floor:
        print(f"FAIL: cycles_per_sec regressed more than "
              f"{args.threshold:.0%} below the committed baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
