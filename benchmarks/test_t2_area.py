"""T2 (Table 2) — active-silicon area of the nine network designs.

Published totals (mm^2): baseline 30.29 / 9.38 / 3.25 at 16/8/4 B; static
32.65 / 10.41 / 3.92; adaptive (50 APs) 37.66 / 12.60 / 5.34 — an 82.3%
reduction for the adaptive 4 B design vs the 16 B baseline.
"""

import pytest

from repro.experiments import TABLE2_PAPER, table2_area


def test_t2_area(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: table2_area(runner), rounds=1, iterations=1
    )
    save_result(result)
    for key, paper_total in TABLE2_PAPER.items():
        measured = result.series[key].total_mm2
        assert measured == pytest.approx(paper_total, rel=0.08), key
    assert result.series["adaptive4_vs_baseline16_reduction"] == pytest.approx(
        0.823, abs=0.02
    )
