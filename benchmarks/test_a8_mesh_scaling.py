"""A8 (ablation) — does the RF-I story scale with mesh size?

The paper's argument is prospective: interconnect power grows as CMPs
scale, so the shortcut overlay should matter *more* on larger meshes.  This
ablation rebuilds the whole stack at 6x6, 8x8, and 10x10 and checks the
static-shortcut latency gain grows with mesh diameter.
"""

import dataclasses

from repro.experiments.report import Table
from repro.noc import MeshTopology, Network, RoutingTables
from repro.noc.simulator import Simulator
from repro.params import MeshParams
from repro.shortcuts import SelectionConfig, select_architecture_shortcuts
from repro.traffic import ProbabilisticTraffic, uniform

#: (width, cores, caches, memports) — component mix scaled with the mesh.
SIZES = (
    (6, 22, 10, 4),
    (8, 42, 18, 4),
    (10, 64, 32, 4),
)


def run_scaling(runner):
    table = Table(
        "A8 — mesh-size scaling (uniform traffic, 16 shortcuts)",
        ["mesh", "avg dist (mesh)", "avg dist (rf)", "baseline lat",
         "static lat", "gain"],
    )
    series = {}
    for width, cores, caches, mems in SIZES:
        mesh = MeshParams(width=width, height=width, num_cores=cores,
                          num_caches=caches, num_memports=mems)
        params = dataclasses.replace(runner.params, mesh=mesh)
        topo = MeshTopology(mesh)
        shortcuts = select_architecture_shortcuts(
            topo, SelectionConfig(budget=16)
        )
        base_tables = RoutingTables(topo)
        rf_tables = RoutingTables(topo, shortcuts)
        pattern = uniform(topo)
        lat = {}
        for name, tables in (("baseline", base_tables), ("static", rf_tables)):
            network = Network(topo, params, tables)
            source = ProbabilisticTraffic(
                topo, pattern, 0.012, seed=runner.config.traffic_seed
            )
            stats = Simulator(network, [source], runner.config.sim).run()
            lat[name] = stats.avg_packet_latency
        gain = 1 - lat["static"] / lat["baseline"]
        series[width] = {
            "mesh_dist": base_tables.average_distance(),
            "rf_dist": rf_tables.average_distance(),
            "baseline": lat["baseline"],
            "static": lat["static"],
            "gain": gain,
        }
        table.add(f"{width}x{width}", base_tables.average_distance(),
                  rf_tables.average_distance(), lat["baseline"],
                  lat["static"], gain)
    table.note("the same 16-shortcut budget buys more on a larger mesh")
    return table, series


def test_a8_mesh_scaling(benchmark, runner, save_result):
    table, series = benchmark.pedantic(
        lambda: run_scaling(runner), rounds=1, iterations=1
    )

    class _Result:
        experiment = "A8"

        @staticmethod
        def render():
            return table.render()

    save_result(_Result())
    # Shortcuts help at every size...
    for row in series.values():
        assert row["gain"] > 0.05
        assert row["rf_dist"] < row["mesh_dist"]
    # ...and the absolute latency saved grows with the mesh.
    saved = {w: series[w]["baseline"] - series[w]["static"] for w in series}
    assert saved[10] > saved[6]
