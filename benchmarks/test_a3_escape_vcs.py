"""A3 (ablation) — the reserved escape virtual channels.

The paper handles deadlock with "eight reserved virtual channels that only
use conventional mesh links".  Removing them exposes the cyclic channel
dependencies a shortcut ring creates: under heavy bursts the escape-less
network wedges or strands packets, while the escape-equipped one always
drains completely.
"""

from repro.experiments.ablations import a3_escape_vcs


def test_a3_escape_vcs(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: a3_escape_vcs(runner), rounds=1, iterations=1
    )
    save_result(result)
    with_escape = result.series[2]
    without = result.series[0]
    # With escape VCs: complete delivery, always.
    assert with_escape["drained"]
    assert with_escape["delivered"] == with_escape["injected"]
    # Without them the network must not do *better*; typically it wedges.
    assert (not without["drained"]) or (
        without["delivered"] <= with_escape["delivered"]
    )
