"""E4 — Fig 3a vs Fig 3b shortcut-selection heuristics.

The paper tried both and "found the resulting set of shortcuts to perform
comparably well", then used the cheaper greedy one.  This ablation verifies
that on the real 10x10 mesh: the exhaustive permutation-graph heuristic may
edge out greedy on total cost, but not by a margin that changes the design.
"""

from repro.experiments import e4_heuristic_ablation


def test_e4_heuristics(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: e4_heuristic_ablation(runner), rounds=1, iterations=1
    )
    save_result(result)
    greedy = result.series["greedy"]
    perm = result.series["permutation"]
    # Permutation optimizes the objective directly; greedy stays within 10%.
    assert result.series["cost_ratio"] <= 1.10
    # Both dramatically beat the bare mesh diameter.
    assert greedy["avg_distance"] < 5.2
    assert perm["avg_distance"] < 5.2
    # And greedy is orders of magnitude cheaper to run.
    assert greedy["seconds"] < perm["seconds"]
