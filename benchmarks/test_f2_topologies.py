"""F2 (Fig 2) — the overlay topologies: waveguide, static and adaptive sets.

Structural reproduction: 50 staggered RF-enabled routers; 16 static
shortcuts selected at design time; adaptive shortcuts for the 1Hotspot
trace clustering near the hotspot cache bank at (7, 0).
"""

from repro.experiments import fig2_topologies


def test_f2_topologies(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig2_topologies(runner), rounds=1, iterations=1
    )
    save_result(result)
    static = result.series["static_shortcuts"]
    adaptive = result.series["adaptive_shortcuts"]
    assert len(static) == 16
    assert len(adaptive) == 16
    topo = runner.topology
    hot = topo.router_id(7, 0)
    # Fig 2(c): several adaptive endpoints sit within 2 hops of the hotspot.
    near = sum(
        1 for s, d in adaptive
        if min(topo.manhattan(s, hot), topo.manhattan(d, hot)) <= 2
    )
    assert near >= 3
    # The floorplan render shows all 50 access points.
    assert result.series["floorplan"].count("*") == 50
