"""F1 (Fig 1) — traffic by Manhattan distance for x264 and bodytrack.

Published shape: x264's profile is comparatively flat with traffic at the
maximum distance and one hotspot; bodytrack is strongly local, sends the
most messages between neighbours, and almost nothing beyond 13 hops.
"""

from repro.experiments import fig1_traffic_locality


def test_f1_locality(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig1_traffic_locality(runner, num_messages=30_000),
        rounds=1, iterations=1,
    )
    save_result(result)
    x264 = result.series["x264"]
    body = result.series["bodytrack"]
    # bodytrack: nothing beyond 13 hops; x264 reaches the full diameter.
    assert max(body) <= 13
    assert max(x264) >= 14
    # bodytrack is the more local application.
    body_total = sum(body.values())
    x264_total = sum(x264.values())
    body_near = sum(c for d, c in body.items() if d <= 3) / body_total
    x264_near = sum(c for d, c in x264.items() if d <= 3) / x264_total
    assert body_near > x264_near
    # bodytrack peaks at short distance.
    assert max(body, key=body.get) <= 3
