"""Closed-loop load generator for the ``repro.serve`` tier.

Hosts the service in-process (:class:`~repro.serve.http.ServerThread`,
tiny simulation windows, a throwaway store) and drives it with K
closed-loop client threads — each thread issues one ``POST /v1/simulate``
at a time over a small working set of distinct cells, waits for the
answer, and immediately issues the next.  A 429 is honored: the thread
backs off for the server's ``Retry-After`` hint and re-offers the same
cell, so every request eventually settles — the bench fails if any
accepted request goes unanswered.

What the run proves, and records into ``results/BENCH_serve.json``:

* each distinct cell is computed **exactly once** however many clients
  ask for it (coalescing while cold, warm store hits after);
* the ``/metrics`` reconciliation identity holds under saturating load;
* client-observed latency (p50/p99), throughput, and the warm-hit /
  coalesce / shed rates.

A second section (``--no-cluster`` to skip) scales the **sharded tier**:
real ``repro serve`` subprocess workers behind the consistent-hash
router, warm-path closed-loop throughput at 1/2/4/8 workers over one
shared read-through cache, plus a degradation run that SIGKILLs one of
two shards mid-load and proves the closed loop never sees a failure
while the supervisor restarts it.  The >=1.6x-at-2-workers scaling gate
is enforced only when the host has >=2 CPUs — on a single core the
workers time-slice one processor and the numbers are recorded honestly
without pretending a speedup happened.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--clients K]
        [--duration S] [--queue-limit N] [--concurrency N] [--out FILE]
        [--no-cluster] [--cluster-workers 1,2,4,8] [--cluster-duration S]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.cluster import Cluster
from repro.exec import ResultStore
from repro.experiments import ExperimentConfig
from repro.params import SimulationParams
from repro.serve import ServeClient, ServerThread, SimulationService

RESULTS_DIR = Path(__file__).parent / "results"

#: Tiny windows: a cold cell simulates in about a second, so a short run
#: covers the cold/coalesced phase *and* a long warm tail.
BENCH_CONFIG = ExperimentConfig(
    sim=SimulationParams(warmup_cycles=50, measure_cycles=200,
                         drain_cycles=1_500),
    profile_cycles=1_000,
)

#: The working set: distinct cells the closed loop cycles over.
CELLS = [
    {"design": "baseline", "workload": "uniform"},
    {"design": "baseline", "workload": "1Hotspot"},
    {"design": "static", "workload": "uniform"},
    {"design": "static", "workload": "1Hotspot"},
    {"design": "wire", "workload": "uniform"},
    {"design": "adaptive", "workload": "uniform"},
]


class ClientLoop(threading.Thread):
    """One closed-loop client: request, await, repeat until the deadline."""

    def __init__(self, index: int, port: int, deadline: float,
                 barrier: threading.Barrier):
        super().__init__(daemon=True)
        self.client = ServeClient(port=port, timeout=300.0)
        self.rng = random.Random(1_000 + index)
        self.deadline = deadline
        self.barrier = barrier
        self.latencies_ms: list[float] = []
        self.ok = 0
        self.shed_retries = 0
        self.errors: list[str] = []
        self.unanswered = 0

    def run(self) -> None:
        self.barrier.wait()
        while time.monotonic() < self.deadline:
            cell = self.rng.choice(CELLS)
            start = time.perf_counter()
            answered = False
            # Closed loop with shed-honoring retry: the request is not
            # abandoned until it settles, so "accepted but unanswered"
            # can only mean a server bug.
            while True:
                response = self.client.simulate(**cell)
                if response.status == 200:
                    self.latencies_ms.append(
                        (time.perf_counter() - start) * 1000.0
                    )
                    self.ok += 1
                    answered = True
                elif response.status in (429, 503):
                    # 429: the worker is shedding.  503: the router has
                    # no shard for the key *right now* (mid-failover).
                    # Both mean "come back", not "failed".
                    self.shed_retries += 1
                    time.sleep(min(response.retry_after_s or 1, 2))
                    continue
                else:
                    self.errors.append(
                        f"{response.status}: "
                        f"{response.payload.get('error', '?')}"
                    )
                break
            if not answered and not self.errors:
                self.unanswered += 1


def percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_bench(clients: int, duration: float, queue_limit: int,
              concurrency: int, store_root: Path) -> dict:
    service = SimulationService(
        config=BENCH_CONFIG, store=ResultStore(store_root),
        queue_limit=queue_limit, concurrency=concurrency,
    )
    thread = ServerThread(service)
    port = thread.start()
    barrier = threading.Barrier(clients + 1)
    deadline = time.monotonic() + duration
    loops = [ClientLoop(i, port, deadline, barrier)
             for i in range(clients)]
    for loop in loops:
        loop.start()
    start = time.monotonic()
    barrier.wait()
    for loop in loops:
        loop.join(duration + 300)
    elapsed = time.monotonic() - start

    client = ServeClient(port=port, timeout=30.0)
    metrics = client.metrics().payload
    thread.stop()

    latencies = [ms for loop in loops for ms in loop.latencies_ms]
    ok = sum(loop.ok for loop in loops)
    shed_retries = sum(loop.shed_retries for loop in loops)
    errors = [e for loop in loops for e in loop.errors]
    unanswered = sum(loop.unanswered for loop in loops)
    settled = metrics["settled"]
    answered_total = (settled["store"] + settled["coalesced"]
                      + settled["computed"])
    return {
        "bench": "serve",
        "config": {
            "clients": clients,
            "duration_s": duration,
            "queue_limit": queue_limit,
            "concurrency": concurrency,
            "distinct_cells": len(CELLS),
            "warmup_cycles": BENCH_CONFIG.sim.warmup_cycles,
            "measure_cycles": BENCH_CONFIG.sim.measure_cycles,
        },
        "requests": {
            "ok": ok,
            "shed_retries": shed_retries,
            "errors": errors[:10],
            "unanswered": unanswered,
        },
        "latency_ms": {
            "p50": percentile(latencies, 0.50) if latencies else None,
            "p99": percentile(latencies, 0.99) if latencies else None,
            "max": max(latencies) if latencies else None,
            "mean": (sum(latencies) / len(latencies)) if latencies else None,
        },
        "throughput_rps": ok / elapsed if elapsed else 0.0,
        "sources": settled,
        "rates": {
            "warm_hit": settled["store"] / answered_total
            if answered_total else 0.0,
            "coalesce": settled["coalesced"] / answered_total
            if answered_total else 0.0,
            "shed": settled["shed"] / (answered_total + settled["shed"])
            if answered_total + settled["shed"] else 0.0,
        },
        "reconciliation": metrics["reconciliation"],
        "store": metrics["store"],
    }


# -- the sharded tier ---------------------------------------------------------

#: Gate: warm-path throughput at 2 workers over 1 worker.  Only
#: meaningful when the workers have their own CPUs to scale onto.
CLUSTER_SPEEDUP_AT_2 = 1.6


def _drive_warm(port: int, clients: int, duration: float) -> dict:
    """Closed-loop clients against an already-warm endpoint."""
    barrier = threading.Barrier(clients + 1)
    deadline = time.monotonic() + duration
    loops = [ClientLoop(i, port, deadline, barrier) for i in range(clients)]
    for loop in loops:
        loop.start()
    start = time.monotonic()
    barrier.wait()
    for loop in loops:
        loop.join(duration + 300)
    elapsed = time.monotonic() - start
    latencies = [ms for loop in loops for ms in loop.latencies_ms]
    ok = sum(loop.ok for loop in loops)
    return {
        "ok": ok,
        "shed_retries": sum(loop.shed_retries for loop in loops),
        "errors": [e for loop in loops for e in loop.errors][:10],
        "unanswered": sum(loop.unanswered for loop in loops),
        "throughput_rps": ok / elapsed if elapsed else 0.0,
        "latency_ms": {
            "p50": percentile(latencies, 0.50) if latencies else None,
            "p99": percentile(latencies, 0.99) if latencies else None,
        },
    }


def _seed_cells(port: int) -> None:
    """Compute every working-set cell once (fills the shared tier)."""
    client = ServeClient(port=port, timeout=600.0)
    try:
        for cell in CELLS:
            response = client.simulate_with_retry(retries=20, **cell)
            if response.status != 200:
                raise RuntimeError(
                    f"seeding {cell} failed ({response.status}): "
                    f"{response.payload.get('error', '?')}")
    finally:
        client.close()


def run_cluster_scale(workers_list: list[int], clients: int,
                      duration: float, cache_root: Path) -> dict:
    """Warm-path throughput at each worker count over one shared tier.

    The 1-worker point seeds the shared read-through tier; every later
    point starts cold-storewise but warm-tierwise, so what's measured is
    the steady warm path (store/tier hits), never a recompute.
    """
    points: dict[str, dict] = {}
    for workers in workers_list:
        cluster = Cluster(workers=workers, fast=True, processes=True,
                          cache_root=str(cache_root),
                          poll_interval_s=0.25)
        port = cluster.start()
        try:
            if not points:
                _seed_cells(port)
            result = _drive_warm(port, clients, duration)
            status = ServeClient(port=port, timeout=30.0)
            counters = status.cluster().payload["counters"]
            status.close()
            result["requests_by_shard"] = counters["requests"]
            result["rebalanced_keys"] = counters["rebalanced_keys"]
            points[str(workers)] = result
        finally:
            cluster.stop()
    base = points[str(workers_list[0])]["throughput_rps"]
    return {
        "workers": points,
        "speedup_vs_1": {
            n: (points[n]["throughput_rps"] / base if base else None)
            for n in points if n != str(workers_list[0])
        },
    }


def run_cluster_kill(clients: int, duration: float,
                     cache_root: Path) -> dict:
    """SIGKILL one of two shards mid-load; the closed loop must not see it.

    The router fails the dead shard's keys over to the ring successor
    (warm, through the shared tier) while the supervisor restarts the
    worker; rebalanced keys and the restart are recorded as proof the
    path was actually exercised.
    """
    cluster = Cluster(workers=2, fast=True, processes=True,
                      cache_root=str(cache_root), poll_interval_s=0.25)
    port = cluster.start()
    try:
        victim = cluster.workers[0]
        killer = threading.Timer(
            max(duration / 3, 0.5),
            lambda: os.kill(victim.pid, signal.SIGKILL))
        killer.start()
        result = _drive_warm(port, clients, duration)
        killer.cancel()
        deadline = time.monotonic() + 60
        recovered = False
        status = ServeClient(port=port, timeout=30.0)
        while time.monotonic() < deadline:
            payload = status.cluster().payload
            if (payload["counters"]["states"][victim.shard_id] == "up"
                    and victim.restarts >= 1):
                recovered = True
                break
            time.sleep(0.25)
        counters = status.cluster().payload["counters"]
        status.close()
        result.update({
            "killed_shard": victim.shard_id,
            "restarts": victim.restarts,
            "recovered": recovered,
            "rebalanced_keys": counters["rebalanced_keys"],
        })
        return result
    finally:
        cluster.stop()


def run_cluster_bench(workers_list: list[int], clients: int,
                      duration: float) -> dict:
    cpus = os.cpu_count() or 1
    enforced = cpus >= 2
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        scale = run_cluster_scale(workers_list, clients, duration,
                                  Path(tmp) / "tier")
        kill = (run_cluster_kill(clients, duration, Path(tmp) / "tier")
                if 2 in workers_list else None)
    return {
        **scale,
        "kill_one_shard": kill,
        "scaling_gate": {
            "required_speedup_at_2": CLUSTER_SPEEDUP_AT_2,
            "enforced": enforced,
            "cpus": cpus,
            "note": (None if enforced else
                     f"host has {cpus} CPU(s): subprocess workers "
                     "time-slice one core, so the warm-path speedup "
                     "gate cannot be met here; numbers recorded as "
                     "measured"),
        },
    }


def check_cluster(cluster: dict) -> list[str]:
    """Pass/fail claims for the sharded-tier section."""
    failures = []
    for n, point in cluster["workers"].items():
        if point["errors"]:
            failures.append(
                f"cluster x{n}: unexpected errors {point['errors']}")
        if point["unanswered"]:
            failures.append(
                f"cluster x{n}: {point['unanswered']} requests "
                "never answered")
    gate = cluster["scaling_gate"]
    speedup_at_2 = (cluster["speedup_vs_1"] or {}).get("2")
    if (gate["enforced"] and speedup_at_2 is not None
            and speedup_at_2 < gate["required_speedup_at_2"]):
        failures.append(
            f"warm-path speedup at 2 workers is {speedup_at_2:.2f}x, "
            f"gate is {gate['required_speedup_at_2']}x")
    kill = cluster.get("kill_one_shard")
    if kill is not None:
        if kill["errors"]:
            failures.append(f"kill run: client-visible errors "
                            f"{kill['errors']}")
        if not kill["recovered"]:
            failures.append("kill run: supervisor never restarted the "
                            "killed shard")
        if not kill["restarts"]:
            failures.append("kill run: no restart recorded")
    return failures


def check(report: dict) -> list[str]:
    """The bench's pass/fail claims; returns failure messages."""
    failures = []
    requests = report["requests"]
    if requests["errors"]:
        failures.append(f"unexpected errors: {requests['errors']}")
    if requests["unanswered"]:
        failures.append(
            f"{requests['unanswered']} accepted requests never answered"
        )
    if not report["reconciliation"]["balanced"]:
        failures.append(f"/metrics does not reconcile: "
                        f"{report['reconciliation']}")
    computed = report["sources"]["computed"]
    if computed != report["config"]["distinct_cells"]:
        failures.append(
            f"{computed} cells computed for "
            f"{report['config']['distinct_cells']} distinct cells "
            "(coalescing or warm serving failed)"
        )
    if requests["ok"] < report["config"]["distinct_cells"]:
        failures.append("closed loop finished fewer requests than cells")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--queue-limit", type=int, default=8)
    parser.add_argument("--concurrency", type=int, default=2)
    parser.add_argument("--out", type=Path,
                        default=RESULTS_DIR / "BENCH_serve.json")
    parser.add_argument("--no-cluster", action="store_true",
                        help="skip the sharded-tier scaling section")
    parser.add_argument("--cluster-workers", default="1,2,4,8",
                        help="comma-separated worker counts to scale over")
    parser.add_argument("--cluster-duration", type=float, default=4.0,
                        help="seconds of warm closed-loop load per point")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        report = run_bench(args.clients, args.duration, args.queue_limit,
                           args.concurrency, Path(tmp) / "cache")
    failures = check(report)
    if not args.no_cluster:
        workers_list = [int(n) for n in args.cluster_workers.split(",")]
        report["cluster"] = run_cluster_bench(
            workers_list, args.clients, args.cluster_duration)
        failures += check_cluster(report["cluster"])
    report["passed"] = not failures

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    latency = report["latency_ms"]
    print(f"bench_serve: {report['requests']['ok']} requests in "
          f"{report['config']['duration_s']:.0f}s "
          f"({report['throughput_rps']:.1f} req/s), "
          f"p50 {latency['p50']:.1f} ms, p99 {latency['p99']:.1f} ms")
    print(f"  sources: {report['sources']}  "
          f"warm-hit {report['rates']['warm_hit']:.1%}, "
          f"coalesce {report['rates']['coalesce']:.1%}, "
          f"shed {report['rates']['shed']:.1%}")
    cluster = report.get("cluster")
    if cluster:
        for n, point in cluster["workers"].items():
            print(f"  cluster x{n}: "
                  f"{point['throughput_rps']:.1f} req/s warm "
                  f"(p50 {point['latency_ms']['p50']:.1f} ms, "
                  f"shards {point['requests_by_shard']})")
        gate = cluster["scaling_gate"]
        if not gate["enforced"]:
            print(f"  scaling gate not enforced: {gate['note']}")
        kill = cluster.get("kill_one_shard")
        if kill:
            print(f"  kill-one-shard: {kill['ok']} requests ok, "
                  f"{kill['rebalanced_keys']} keys rebalanced, "
                  f"restarts={kill['restarts']}, "
                  f"recovered={kill['recovered']}")
    print(f"  wrote {args.out}")
    for failure in failures:
        print(f"  FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
