"""Closed-loop load generator for the ``repro.serve`` tier.

Hosts the service in-process (:class:`~repro.serve.http.ServerThread`,
tiny simulation windows, a throwaway store) and drives it with K
closed-loop client threads — each thread issues one ``POST /v1/simulate``
at a time over a small working set of distinct cells, waits for the
answer, and immediately issues the next.  A 429 is honored: the thread
backs off for the server's ``Retry-After`` hint and re-offers the same
cell, so every request eventually settles — the bench fails if any
accepted request goes unanswered.

What the run proves, and records into ``results/BENCH_serve.json``:

* each distinct cell is computed **exactly once** however many clients
  ask for it (coalescing while cold, warm store hits after);
* the ``/metrics`` reconciliation identity holds under saturating load;
* client-observed latency (p50/p99), throughput, and the warm-hit /
  coalesce / shed rates.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--clients K]
        [--duration S] [--queue-limit N] [--concurrency N] [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.exec import ResultStore
from repro.experiments import ExperimentConfig
from repro.params import SimulationParams
from repro.serve import ServeClient, ServerThread, SimulationService

RESULTS_DIR = Path(__file__).parent / "results"

#: Tiny windows: a cold cell simulates in about a second, so a short run
#: covers the cold/coalesced phase *and* a long warm tail.
BENCH_CONFIG = ExperimentConfig(
    sim=SimulationParams(warmup_cycles=50, measure_cycles=200,
                         drain_cycles=1_500),
    profile_cycles=1_000,
)

#: The working set: distinct cells the closed loop cycles over.
CELLS = [
    {"design": "baseline", "workload": "uniform"},
    {"design": "baseline", "workload": "1Hotspot"},
    {"design": "static", "workload": "uniform"},
    {"design": "static", "workload": "1Hotspot"},
    {"design": "wire", "workload": "uniform"},
    {"design": "adaptive", "workload": "uniform"},
]


class ClientLoop(threading.Thread):
    """One closed-loop client: request, await, repeat until the deadline."""

    def __init__(self, index: int, port: int, deadline: float,
                 barrier: threading.Barrier):
        super().__init__(daemon=True)
        self.client = ServeClient(port=port, timeout=300.0)
        self.rng = random.Random(1_000 + index)
        self.deadline = deadline
        self.barrier = barrier
        self.latencies_ms: list[float] = []
        self.ok = 0
        self.shed_retries = 0
        self.errors: list[str] = []
        self.unanswered = 0

    def run(self) -> None:
        self.barrier.wait()
        while time.monotonic() < self.deadline:
            cell = self.rng.choice(CELLS)
            start = time.perf_counter()
            answered = False
            # Closed loop with shed-honoring retry: the request is not
            # abandoned until it settles, so "accepted but unanswered"
            # can only mean a server bug.
            while True:
                response = self.client.simulate(**cell)
                if response.status == 200:
                    self.latencies_ms.append(
                        (time.perf_counter() - start) * 1000.0
                    )
                    self.ok += 1
                    answered = True
                elif response.status == 429:
                    self.shed_retries += 1
                    time.sleep(min(response.retry_after_s or 1, 2))
                    continue
                else:
                    self.errors.append(
                        f"{response.status}: "
                        f"{response.payload.get('error', '?')}"
                    )
                break
            if not answered and not self.errors:
                self.unanswered += 1


def percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def run_bench(clients: int, duration: float, queue_limit: int,
              concurrency: int, store_root: Path) -> dict:
    service = SimulationService(
        config=BENCH_CONFIG, store=ResultStore(store_root),
        queue_limit=queue_limit, concurrency=concurrency,
    )
    thread = ServerThread(service)
    port = thread.start()
    barrier = threading.Barrier(clients + 1)
    deadline = time.monotonic() + duration
    loops = [ClientLoop(i, port, deadline, barrier)
             for i in range(clients)]
    for loop in loops:
        loop.start()
    start = time.monotonic()
    barrier.wait()
    for loop in loops:
        loop.join(duration + 300)
    elapsed = time.monotonic() - start

    client = ServeClient(port=port, timeout=30.0)
    metrics = client.metrics().payload
    thread.stop()

    latencies = [ms for loop in loops for ms in loop.latencies_ms]
    ok = sum(loop.ok for loop in loops)
    shed_retries = sum(loop.shed_retries for loop in loops)
    errors = [e for loop in loops for e in loop.errors]
    unanswered = sum(loop.unanswered for loop in loops)
    settled = metrics["settled"]
    answered_total = (settled["store"] + settled["coalesced"]
                      + settled["computed"])
    return {
        "bench": "serve",
        "config": {
            "clients": clients,
            "duration_s": duration,
            "queue_limit": queue_limit,
            "concurrency": concurrency,
            "distinct_cells": len(CELLS),
            "warmup_cycles": BENCH_CONFIG.sim.warmup_cycles,
            "measure_cycles": BENCH_CONFIG.sim.measure_cycles,
        },
        "requests": {
            "ok": ok,
            "shed_retries": shed_retries,
            "errors": errors[:10],
            "unanswered": unanswered,
        },
        "latency_ms": {
            "p50": percentile(latencies, 0.50) if latencies else None,
            "p99": percentile(latencies, 0.99) if latencies else None,
            "max": max(latencies) if latencies else None,
            "mean": (sum(latencies) / len(latencies)) if latencies else None,
        },
        "throughput_rps": ok / elapsed if elapsed else 0.0,
        "sources": settled,
        "rates": {
            "warm_hit": settled["store"] / answered_total
            if answered_total else 0.0,
            "coalesce": settled["coalesced"] / answered_total
            if answered_total else 0.0,
            "shed": settled["shed"] / (answered_total + settled["shed"])
            if answered_total + settled["shed"] else 0.0,
        },
        "reconciliation": metrics["reconciliation"],
        "store": metrics["store"],
    }


def check(report: dict) -> list[str]:
    """The bench's pass/fail claims; returns failure messages."""
    failures = []
    requests = report["requests"]
    if requests["errors"]:
        failures.append(f"unexpected errors: {requests['errors']}")
    if requests["unanswered"]:
        failures.append(
            f"{requests['unanswered']} accepted requests never answered"
        )
    if not report["reconciliation"]["balanced"]:
        failures.append(f"/metrics does not reconcile: "
                        f"{report['reconciliation']}")
    computed = report["sources"]["computed"]
    if computed != report["config"]["distinct_cells"]:
        failures.append(
            f"{computed} cells computed for "
            f"{report['config']['distinct_cells']} distinct cells "
            "(coalescing or warm serving failed)"
        )
    if requests["ok"] < report["config"]["distinct_cells"]:
        failures.append("closed loop finished fewer requests than cells")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--queue-limit", type=int, default=8)
    parser.add_argument("--concurrency", type=int, default=2)
    parser.add_argument("--out", type=Path,
                        default=RESULTS_DIR / "BENCH_serve.json")
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        report = run_bench(args.clients, args.duration, args.queue_limit,
                           args.concurrency, Path(tmp) / "cache")
    failures = check(report)
    report["passed"] = not failures

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    latency = report["latency_ms"]
    print(f"bench_serve: {report['requests']['ok']} requests in "
          f"{report['config']['duration_s']:.0f}s "
          f"({report['throughput_rps']:.1f} req/s), "
          f"p50 {latency['p50']:.1f} ms, p99 {latency['p99']:.1f} ms")
    print(f"  sources: {report['sources']}  "
          f"warm-hit {report['rates']['warm_hit']:.1%}, "
          f"coalesce {report['rates']['coalesce']:.1%}, "
          f"shed {report['rates']['shed']:.1%}")
    print(f"  wrote {args.out}")
    for failure in failures:
        print(f"  FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
