"""F10 (Fig 10) — unified power/performance comparison.

Published conclusions: (a) unicast — the 4 B mesh with adaptive RF-I
shortcuts matches the 16 B baseline's performance at ~35% of its power,
and RF-I shortcuts beat the same shortcuts built from buffered RC wires;
(b) multicast — the 4 B mesh combining 15 adaptive shortcuts with RF
multicast delivers ~1.15x the baseline's performance at ~31% power.
"""

from repro.experiments import fig10_unified


def test_f10_unified(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig10_unified(runner), rounds=1, iterations=1
    )
    save_result(result)
    s = result.series

    # (a) Unicast: RF shortcuts strictly beat wire shortcuts at 16 B.
    assert s[("static", 16)]["performance"] > s[("wire", 16)]["performance"]
    # Adaptive 4 B roughly matches the 16 B baseline at a fraction of power.
    ad4 = s[("adaptive", 4)]
    assert ad4["performance"] >= 0.88
    assert ad4["power"] <= 0.50
    # And it dominates the bare 4 B mesh outright.
    base4 = s[("baseline", 4)]
    assert ad4["performance"] > base4["performance"]

    # (b) Multicast: the combined design is the most cost-effective.
    combo4 = s[("adaptive+rf-mc", 4)]
    assert combo4["performance"] >= 1.0
    assert combo4["power"] <= 0.55
    # RF multicast beats expanding multicasts into unicasts on the same
    # adaptive topology.
    assert (
        s[("adaptive+rf-mc", 16)]["performance"]
        > s[("adaptive+unicast-mc", 16)]["performance"]
    )
