"""A2 (ablation) — number of tunable RF access points.

Extends Fig 7's 25-vs-50 comparison with 12 and 100 points and the
selection-objective view.  The paper found 100 "performed quite comparably"
to 50 — selection freedom saturates once the stagger covers the die.
"""

from repro.experiments.ablations import a2_access_points


def test_a2_access_points(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: a2_access_points(runner), rounds=1, iterations=1
    )
    save_result(result)
    s = result.series
    # Too few access points clearly hurts the selection objective...
    worst = max(s[c]["weighted_cost"] for c in (25, 50, 100))
    assert s[12]["weighted_cost"] > worst
    # ...while 25/50/100 are within a few percent of each other — the
    # paper's "100 performed quite comparably to 50".  (Greedy selection is
    # not monotone in its candidate set, so small inversions can occur.)
    best = min(s[c]["weighted_cost"] for c in (25, 50, 100))
    assert worst <= best * 1.06
    assert s[12]["latency"] > max(s[c]["latency"] for c in (25, 50, 100))
    # RF area grows linearly with provisioned points.
    assert s[100]["rf_area"] > s[50]["rf_area"] > s[25]["rf_area"]
