"""E3 — static RF-I shortcut latency reduction per trace (paper: ~20%)."""

from repro.experiments import e3_static_shortcut_gains


def test_e3_static_shortcuts(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: e3_static_shortcut_gains(runner), rounds=1, iterations=1
    )
    save_result(result)
    # Every trace improves, and the mean lands in the paper's ballpark.
    per_trace = {k: v for k, v in result.series.items() if k != "mean"}
    assert all(reduction > 0 for reduction in per_trace.values())
    assert 0.08 <= result.series["mean"] <= 0.35
