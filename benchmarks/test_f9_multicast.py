"""F9 (Fig 9) — multicast: VCT vs RF multicast vs multicast + shortcuts.

Published (vs the 16 B baseline treating multicasts as serial unicasts):
VCT ~-3% latency at high (20%) locality, *worse* at moderate (50%)
locality; RF multicast -14% latency at +11% power; RF multicast + 15
adaptive shortcuts -37% latency at +25% power.
"""

from repro.experiments import fig9_multicast


def test_f9_multicast(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: fig9_multicast(runner), rounds=1, iterations=1
    )
    save_result(result)
    s = result.series
    for locality in (20, 50):
        vct = s[("vct", locality)]
        mc = s[("mc", locality)]
        mc_sc = s[("mc+sc", locality)]
        # RF multicast clearly beats the serial-unicast baseline; adding
        # shortcuts beats multicast alone.
        assert mc["latency"] < 0.97
        assert mc_sc["latency"] < mc["latency"]
        # VCT stays within a few percent of baseline either way.
        assert 0.90 <= vct["latency"] <= 1.12
        # RF designs pay a power premium, bounded as in the paper.
        assert 1.0 < mc["power"] < 1.35
        assert 1.0 < mc_sc["power"] < 1.40
    # VCT's advantage shrinks (or flips) when locality drops 20% -> 50%.
    assert s[("vct", 50)]["latency"] >= s[("vct", 20)]["latency"] - 0.02
