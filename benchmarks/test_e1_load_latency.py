"""E1 — load-latency curves: baseline mesh vs static RF-I shortcuts.

Reconstructed core experiment of the titled HPCA-2008 paper: shortcuts cut
latency at every load and extend the usable throughput range.
"""

from repro.experiments import e1_load_latency


def test_e1_load_latency(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: e1_load_latency(runner, trace="uniform",
                                rates=(0.005, 0.02, 0.04, 0.06)),
        rounds=1, iterations=1,
    )
    save_result(result)
    base = result.series["baseline"]
    static = result.series["static"]
    # Shortcuts win at every measured load...
    for rate in base:
        assert static[rate] < base[rate]
    # ...and by a meaningful margin at low load (paper: ~20% mean).
    low = min(base)
    assert 1 - static[low] / base[low] > 0.10
    # Latency grows with load on both designs (sanity of the load sweep).
    rates = sorted(base)
    assert base[rates[-1]] > base[rates[0]]
