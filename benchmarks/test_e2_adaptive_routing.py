"""E2 — congestion-adaptive shortcut routing (the 2008 paper's policy).

Fixed shortcuts attract traffic; past the contention knee the deterministic
shortest-path network is slower than the bare mesh.  The adaptive policy
compares estimated transmitter wait against the mesh-detour cost, so it
matches deterministic routing at low load and recovers most of the
contention loss at high load.
"""

from repro.experiments import e2_adaptive_routing


def test_e2_adaptive_routing(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: e2_adaptive_routing(runner, trace="uniform",
                                    rates=(0.05, 0.07, 0.09)),
        rounds=1, iterations=1,
    )
    save_result(result)
    det = result.series["deterministic"]
    ada = result.series["adaptive"]
    low, high = min(det), max(det)
    # Low load: adaptive matches deterministic (no false diversions).
    assert ada[low] <= det[low] * 1.05
    # High load: deterministic suffers shortcut contention; adaptive
    # recovers a meaningful share of it.
    assert det[high] > det[low] * 1.2
    assert ada[high] < det[high] * 0.95
