"""A1 (ablation) — shortcut budget B.

The paper fixes the aggregate RF-I bandwidth at 256 B and allocates it as
B = 16 shortcuts of 16 B.  Sweeping B shows each added shortcut lowering
the average shortest path with diminishing returns, with simulated latency
following.
"""

from repro.experiments.ablations import a1_shortcut_budget


def test_a1_shortcut_budget(benchmark, runner, save_result):
    result = benchmark.pedantic(
        lambda: a1_shortcut_budget(runner), rounds=1, iterations=1
    )
    save_result(result)
    series = result.series
    budgets = sorted(series)
    for lo, hi in zip(budgets, budgets[1:]):
        assert series[hi]["avg_distance"] < series[lo]["avg_distance"]
        assert series[hi]["latency"] <= series[lo]["latency"] * 1.02
    first_half = series[0]["avg_distance"] - series[8]["avg_distance"]
    second_half = series[8]["avg_distance"] - series[16]["avg_distance"]
    assert first_half > second_half
