"""Directory-coherence invalidations over three multicast fabrics.

Drives the message-level directory protocol (Zipf-hot blocks, real sharer
sets) and realizes its invalidate/fill multicasts three ways: serial
unicasts on the baseline mesh, Virtual Circuit Trees, and the RF-I
broadcast band.  Prints latency and the RF band's power-gating statistics —
the Section 3.3 / Figure 9 story on protocol-shaped (rather than random)
destination sets.

Run:  python examples/multicast_coherence.py
"""

import dataclasses

from repro import ExperimentRunner, FAST_CONFIG, NoCPowerModel, Simulator, baseline
from repro.coherence import CoherenceConfig, DirectoryProtocol
from repro.core import RFIOverlay
from repro.multicast import (
    MulticastAwareSource, RFRealization, UnicastExpansion, VCTRealization,
)


def run_fabric(runner, name):
    topo = runner.topology
    design = baseline(16, runner.params, topo)
    overlay = None
    if name == "rf":
        overlay = RFIOverlay(topo, topo.rf_enabled_routers(50), adaptive=True)
        overlay.configure_multicast(topo.central_bank(0))
        design = dataclasses.replace(design, name="rf-mc-16B", overlay=overlay)
    network = design.new_network()
    if name == "unicast":
        realization = UnicastExpansion(network)
    elif name == "vct":
        realization = VCTRealization(network)
    else:
        realization = RFRealization(network, overlay.multicast_receivers,
                                    epoch_cycles=4)
    protocol = DirectoryProtocol(
        runner.topology,
        CoherenceConfig(num_blocks=256, accesses_per_cycle=0.35, seed=11),
    )
    source = MulticastAwareSource(protocol, realization)
    stats = Simulator(network, [source], runner.config.sim).run()
    power = NoCPowerModel().power(design, stats)
    return stats, power, protocol, realization


def main() -> None:
    runner = ExperimentRunner(FAST_CONFIG)
    results = {}
    for fabric in ("unicast", "vct", "rf"):
        stats, power, protocol, realization = run_fabric(runner, fabric)
        results[fabric] = (stats, power)
        line = (
            f"{fabric:<8} latency {stats.avg_packet_latency:7.1f}  "
            f"power {power.total_w:6.2f} W  "
            f"deliveries {stats.delivery_events}"
        )
        if fabric == "rf":
            engine = realization.engine
            line += (
                f"  broadcasts {engine.broadcasts}"
                f"  power-gated receptions {engine.gated_receptions}"
            )
        print(line)
        if fabric == "unicast":
            print(
                f"         protocol: {protocol.stats['reads']} reads, "
                f"{protocol.stats['writes']} writes, "
                f"{protocol.stats['multicast_messages']} invalidate multicasts"
            )

    base_lat = results["unicast"][0].avg_packet_latency
    rf_lat = results["rf"][0].avg_packet_latency
    print()
    print(
        f"RF-I multicast moves coherence invalidations "
        f"{1 - rf_lat / base_lat:+.0%} vs serial unicasts, with non-matching "
        f"receivers power-gated per the DBV announcement flit."
    )


if __name__ == "__main__":
    main()
