"""Per-application reconfiguration, end to end (Section 3.2).

Profiles two very different workloads — the local, two-hotspot
bodytrack-like application and the flat, one-hotspot x264-like application —
then reconfigures the same 50-access-point overlay for each: shortcut
selection over F(x,y), mixer retuning, and the 99-cycle routing-table
update.  Prints both shortcut sets side by side and the latency each
configuration achieves on each workload, demonstrating *why* adapting
matters: a configuration tuned for one application is mediocre on another.

Run:  python examples/adaptive_reconfiguration.py
"""

from repro import ExperimentRunner, FAST_CONFIG, MeshTopology, Simulator
from repro.core import RFIOverlay, ReconfigurationController
from repro.noc import Network, RoutingPolicy
from repro.traffic import APPLICATIONS, ProbabilisticTraffic, application_pattern


def main() -> None:
    runner = ExperimentRunner(FAST_CONFIG)
    topo: MeshTopology = runner.topology
    overlay = RFIOverlay(topo, topo.rf_enabled_routers(50), adaptive=True)
    controller = ReconfigurationController(topo, overlay)

    workloads = ("bodytrack", "x264")
    plans = {}
    for app in workloads:
        profile = runner.profile(app)
        plans[app] = controller.reconfigure(profile)
        print(f"Reconfigured for {app}:")
        print(f"  shortcuts: {[(s.src, s.dst) for s in plans[app].shortcuts]}")
        print(f"  routing-table update: {plans[app].table_update_cycles} cycles "
              f"(1 per other router), tuning: {plans[app].tuning_cycles} cycles")
        print()

    print(f"{'configured for':<16}" + "".join(f"{w + ' lat':>16}" for w in workloads))
    for configured in workloads:
        cells = []
        for running in workloads:
            pattern = application_pattern(topo, APPLICATIONS[running])
            source = ProbabilisticTraffic(
                topo, pattern, APPLICATIONS[running].rate, seed=7
            )
            network = Network(
                topo, runner.params, plans[configured].tables, RoutingPolicy()
            )
            stats = Simulator(network, [source], runner.config.sim).run()
            cells.append(stats.avg_packet_latency)
        print(f"{configured:<16}" + "".join(f"{c:>16.1f}" for c in cells))

    print()
    print("Diagonal entries (matched configuration) should be the row minima:")
    print("the overlay tuned for an application serves it best.")


if __name__ == "__main__":
    main()
