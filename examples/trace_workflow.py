"""Trace workflow: record once, characterize, replay everywhere.

The paper decouples network studies from full-system simulation by
collecting injection traces and replaying them (Section 4.2).  This example
runs the whole loop:

1. record an x264-model trace to a JSON-lines file;
2. characterize it (hop-distance profile, automatic hotspot detection —
   reproducing the paper's "manual analysis" that x264 has one hotspot);
3. replay the *identical* trace on the 16 B baseline and on an adaptive 4 B
   design whose overlay was selected from the trace's own frequency matrix.

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ExperimentRunner, FAST_CONFIG, Simulator, adaptive_rf, baseline
from repro.traffic import (
    APPLICATIONS, ProbabilisticTraffic, Trace, TraceReplay, application_pattern,
    detect_hotspots, locality_index, record_trace,
)

RECORD_CYCLES = 6_000


def main() -> None:
    runner = ExperimentRunner(FAST_CONFIG)
    topo = runner.topology

    # 1. Record.
    model = APPLICATIONS["x264"]
    source = ProbabilisticTraffic(
        topo, application_pattern(topo, model), model.rate, seed=31
    )
    trace = record_trace(source, RECORD_CYCLES)
    path = Path(tempfile.mkdtemp()) / "x264.jsonl"
    trace.save(path)
    print(f"recorded {len(trace)} messages over {RECORD_CYCLES} cycles "
          f"-> {path}")

    # 2. Characterize.
    loaded = Trace.load(path)
    n = topo.params.num_routers
    freq = np.zeros((n, n))
    for record in loaded.records:
        freq[record.src, record.dst] += 1
    hotspots = detect_hotspots(freq)
    print(f"locality index (mean hops): {locality_index(freq, topo):.2f}")
    print(f"hotspots detected: {[(h.router, topo.coord(h.router)) for h in hotspots]} "
          "(paper's manual analysis: x264 has one)")

    # 3. Replay on two designs.
    designs = [
        baseline(16, runner.params, topo),
        adaptive_rf(freq, 4, 50, runner.params, topo),
    ]
    print()
    print(f"{'design':<16} {'latency':>8} {'power W':>8}")
    from repro.power import NoCPowerModel

    model_p = NoCPowerModel()
    for design in designs:
        network = design.new_network()
        stats = Simulator(
            network, [TraceReplay(Trace.load(path))], runner.config.sim
        ).run()
        power = model_p.power(design, stats)
        print(f"{design.name:<16} {stats.avg_packet_latency:>8.1f} "
              f"{power.total_w:>8.2f}")

    print()
    print("The same recorded workload drives both designs — the adaptive 4B "
          "overlay was selected from the trace's own frequency matrix.")


if __name__ == "__main__":
    main()
