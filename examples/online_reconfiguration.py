"""Runtime adaptation to workload phases (the paper's stated extension).

Section 3.2 allows shortcut selection "at run time by the operating system,
a hypervisor, or in the hardware itself", but the paper evaluates only
once-per-application reconfiguration from an offline profile.  This example
exercises the runtime variant on a workload that alternates between two
phases with hotspots in *opposite corners* of the die:

* ``static-A`` / ``static-B`` — overlays tuned offline for one phase each
  (the paper's methodology); each wins its own phase and loses the other;
* ``online`` — the :class:`OnlineReconfigurator` re-selects shortcuts every
  1500 cycles from live event counters, paying the full drain + tuning +
  99-cycle table-update cost per reconfiguration, and needs no profile.

Run:  python examples/online_reconfiguration.py
"""

from repro import ExperimentRunner, FAST_CONFIG, Simulator
from repro.core import (
    OnlineReconfigurator, PhasedSource, RFIOverlay, adaptive_rf, baseline,
)
from repro.core.reconfig import ReconfigurationController
from repro.noc import Network, RoutingPolicy
from repro.params import SimulationParams
from repro.traffic import ProbabilisticTraffic
from repro.traffic.patterns import hotspot_at

PHASE_CYCLES = 4_000
RATE = 0.018
WARMUP = 300
SIM = SimulationParams(warmup_cycles=WARMUP, measure_cycles=12_000,
                       drain_cycles=15_000)


def make_workload(runner, seed=21):
    topo = runner.topology
    phase_a = hotspot_at(topo, [(7, 0)], strength=20)
    phase_b = hotspot_at(topo, [(2, 9)], strength=20)
    return PhasedSource(
        [
            ProbabilisticTraffic(topo, phase_a, RATE, seed=seed),
            ProbabilisticTraffic(topo, phase_b, RATE, seed=seed + 1),
        ],
        phase_cycles=PHASE_CYCLES,
    )


def run(network, source, sim=SIM):
    """Run and return (overall, phase-A, phase-B) average latency."""
    by_phase = {0: [], 1: []}

    def hook(packet, cycle):
        if packet.inject_cycle < WARMUP:
            return
        phase = ((packet.inject_cycle - WARMUP) // PHASE_CYCLES) % 2
        by_phase[phase].append(cycle - packet.inject_cycle)

    network.delivery_hooks.append(hook)
    stats = Simulator(network, [source], sim).run()
    mean = lambda xs: sum(xs) / max(1, len(xs))  # noqa: E731
    return stats.avg_packet_latency, mean(by_phase[0]), mean(by_phase[1])


def main() -> None:
    runner = ExperimentRunner(FAST_CONFIG)
    topo = runner.topology
    phase_a = hotspot_at(topo, [(7, 0)], strength=20)
    phase_b = hotspot_at(topo, [(2, 9)], strength=20)
    prof_a = ProbabilisticTraffic(topo, phase_a, RATE, seed=99).collect_profile(8_000)
    prof_b = ProbabilisticTraffic(topo, phase_b, RATE, seed=98).collect_profile(8_000)

    rows = {}
    for name, profile in (("static-A", prof_a), ("static-B", prof_b)):
        design = adaptive_rf(profile, 16, 50, runner.params, topo)
        rows[name] = run(design.new_network(), make_workload(runner))

    overlay = RFIOverlay(topo, topo.rf_enabled_routers(50), adaptive=True)
    controller = ReconfigurationController(topo, overlay)
    first = controller.reconfigure(prof_a)
    online_net = Network(topo, runner.params, first.tables, RoutingPolicy())
    online = OnlineReconfigurator(
        make_workload(runner), controller, interval_cycles=1_500, decay=0.25
    )
    rows["online"] = run(online_net, online)

    rows["bare mesh"] = run(
        baseline(16, runner.params, topo).new_network(), make_workload(runner)
    )

    print(f"{'network':<12} {'overall':>8} {'phase A':>8} {'phase B':>8}")
    for name, (overall, a, b) in rows.items():
        print(f"{name:<12} {overall:>8.1f} {a:>8.1f} {b:>8.1f}")

    print()
    print(
        f"online: {online.reconfigurations} reconfigurations, "
        f"{online.total_overhead_cycles()} cycles of drain+tuning+table-update "
        "overhead in total"
    )
    print(
        "Each static profile wins only its own phase; the online overlay "
        "tracks both phases with no offline profile at ~2% cycle overhead."
    )


if __name__ == "__main__":
    main()
