"""Quickstart: simulate the baseline mesh and an RF-I overlaid mesh.

Builds the paper's 64-core / 32-bank / 10x10-mesh CMP, runs the same
uniform workload on (a) the 16 B baseline and (b) a 4 B mesh with adaptive
RF-I shortcuts, and prints latency, power, and area for both — the
headline comparison of the paper in ~30 seconds.

Run:  python examples/quickstart.py
"""

from repro import ExperimentRunner, FAST_CONFIG


def main() -> None:
    runner = ExperimentRunner(FAST_CONFIG)

    print("Floorplan (C=core, $=cache, M=memory; * = RF access point):")
    topo = runner.topology
    print(topo.render(set(topo.rf_enabled_routers(50))))
    print()

    baseline16 = runner.design("baseline", 16)
    adaptive4 = runner.design("adaptive", 4, workload="uniform")

    rows = []
    for design in (baseline16, adaptive4):
        result = runner.run_unicast(design, "uniform")
        rows.append((design.name, result))

    base = rows[0][1]
    print(f"{'design':<16} {'latency':>8} {'power W':>8} {'area mm2':>9} "
          f"{'lat rel':>8} {'pwr rel':>8}")
    for name, result in rows:
        print(
            f"{name:<16} {result.avg_latency:>8.1f} "
            f"{result.total_power_w:>8.2f} {result.total_area_mm2:>9.2f} "
            f"{result.avg_latency / base.avg_latency:>8.3f} "
            f"{result.total_power_w / base.total_power_w:>8.3f}"
        )

    adaptive = rows[1][1]
    saving = 1 - adaptive.total_power_w / base.total_power_w
    print()
    print(
        f"The adaptive 4B mesh runs within "
        f"{abs(1 - adaptive.avg_latency / base.avg_latency):.0%} of the 16B "
        f"baseline's latency while saving {saving:.0%} of NoC power "
        f"(paper: comparable latency, ~65% power saving)."
    )


if __name__ == "__main__":
    main()
