"""Closed-loop CMP: does the network design change application throughput?

The paper evaluates networks open-loop (trace injection).  This example
runs the :mod:`repro.cmp` substrate — 64 MSHR-limited cores with real
L1/L2 tag arrays and a directory protocol — on four kernels, over the 16 B
baseline and the adaptive 4 B RF-I design, and reports IPC: the metric an
architect actually ships.

Run:  python examples/closed_loop_cmp.py
"""

from repro import NoCPowerModel, adaptive_rf, baseline
from repro.cmp import CMPConfig, CMPSystem
from repro.noc import MeshTopology
from repro.params import ArchitectureParams

KERNELS = ("streaming", "pointer_chase", "producer_consumer", "lock_hotspot")
MEM_RATIO = 0.03   # paper-like offered load; see F11 for the heavy regime
WARM = 6_000       # streaming needs a full region pass to warm the L2
CYCLES = 3_000


def run(design, kernel):
    network = design.new_network()
    system = CMPSystem(network, CMPConfig(kernel=kernel, mem_ratio=MEM_RATIO))
    system.warm_caches(WARM)
    network.stats.measure_start = network.cycle + 1  # count all activity
    for _ in range(CYCLES):
        system.tick(network)
        network.step()
    return system, network


def main() -> None:
    params = ArchitectureParams()
    topo = MeshTopology(params.mesh)
    power_model = NoCPowerModel()

    print(f"{'kernel':<18} {'design':<15} {'IPC':>6} {'load lat':>9} "
          f"{'L1':>5} {'L2':>5} {'NoC W':>7}")
    for kernel in KERNELS:
        # Profile on the baseline, then build the adaptive design from it.
        profiling, _ = run(baseline(16, params, topo), kernel)
        profile = profiling.profile_matrix()
        designs = [
            baseline(16, params, topo),
            adaptive_rf(profile, 4, 50, params, topo),
        ]
        for design in designs:
            system, network = run(design, kernel)
            report = system.report(network.cycle)
            power = power_model.power(design, network.stats)
            print(
                f"{kernel:<18} {design.name:<15} {report['ipc']:>6.3f} "
                f"{report['avg_load_latency']:>9.1f} "
                f"{report['l1_hit_rate']:>5.2f} {report['l2_hit_rate']:>5.2f} "
                f"{power.total_w:>7.2f}"
            )
        print()

    print("At paper-like demand the adaptive 4B design holds IPC within a "
          "few percent of the 16B baseline at less than half the NoC power.")


if __name__ == "__main__":
    main()
