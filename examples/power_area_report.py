"""Physical-design report: the power and area models, no simulation needed.

Prints the derived 32 nm link constants (k_opt, h_opt, E_link), the Table 2
area rows, the RF-I provisioning summary of each overlay style, and the
waveguide geometry — everything Section 4.3 computes before a single packet
moves.

Run:  python examples/power_area_report.py
"""

from repro import ExperimentRunner, FAST_CONFIG, NoCPowerModel
from repro.experiments import table2_area
from repro.power import DEFAULT_TECHNOLOGY
from repro.rfi import RFIPhysicalModel, Waveguide


def main() -> None:
    tech = DEFAULT_TECHNOLOGY
    print("Derived 32 nm link model (paper Fig 6b):")
    print(f"  k_opt (repeater size)     : {tech.k_opt:.1f}x minimum")
    print(f"  h_opt (repeater spacing)  : {tech.h_opt_mm:.3f} mm")
    print(f"  E_link                    : {tech.link_energy_pj_per_bit_mm:.4f} pJ/bit/mm")
    print(f"  repeated-wire delay       : {tech.wire_delay_ns_per_mm():.3f} ns/mm "
          f"(vs RF-I at ~0.015 ns/mm)")
    print()

    phy = RFIPhysicalModel()
    print("RF-I physical constants (Sections 2, 4.3):")
    print(f"  transmission lines        : {phy.params.num_lines} x "
          f"{phy.params.line_gbps:.0f} Gbps")
    print(f"  energy                    : {phy.params.energy_pj_per_bit} pJ/bit")
    print(f"  16 static shortcuts       : {phy.static_area_mm2(16):.3f} mm^2")
    print(f"  50 tunable access points  : {phy.adaptive_area_mm2(50):.3f} mm^2")
    print()

    runner = ExperimentRunner(FAST_CONFIG)
    topo = runner.topology
    wg = Waveguide(topo, topo.rf_enabled_routers(50))
    print(f"Waveguide serpentine over 50 access points: {wg.length_mm():.0f} mm, "
          f"{wg.propagation_ns():.2f} ns end-to-end")
    print()

    print(table2_area(runner).render())
    print()

    model = NoCPowerModel()
    design = runner.design("adaptive", 4, workload="uniform")
    result = runner.run_unicast(design, "uniform")
    print("Power breakdown, adaptive 4B mesh under uniform traffic:")
    for component, watts in result.power.breakdown().items():
        print(f"  {component:<18} {watts:8.3f} W")


if __name__ == "__main__":
    main()
